// casvm-datagen: materialize the synthetic stand-in datasets as LIBSVM
// files, for interoperability with other SVM tools or for inspecting what
// the benches actually train on.
//
//   casvm-datagen --standin face --scale 1 --out face.libsvm
//                 --test-out face.t.libsvm

#include <cstdio>

#include "casvm/data/io.hpp"
#include "casvm/data/registry.hpp"
#include "cli_common.hpp"

namespace {

constexpr const char* kUsage = R"(usage: casvm-datagen [options]
  --standin <name>  dataset to generate (default toy); --list to enumerate
  --scale <f>       size factor (default 1.0)
  --seed <s>        RNG seed (default 42)
  --out <file>      training split output (required unless --list)
  --test-out <file> held-out split output (optional)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace casvm;
  const cli::Args args(argc, argv, {"list", "help"});
  if (args.has("help")) cli::usage(kUsage);

  try {
    if (args.has("list")) {
      std::printf("%-10s %-22s %12s %12s\n", "name", "field", "paper m",
                  "paper n");
      for (const auto& name : data::standinNames()) {
        const data::StandinSpec& spec = data::standinSpec(name);
        std::printf("%-10s %-22s %12zu %12zu\n", spec.name.c_str(),
                    spec.applicationField.c_str(), spec.paperSamples,
                    spec.paperFeatures);
      }
      return 0;
    }
    if (!args.has("out")) cli::usage(kUsage);

    const data::NamedDataset nd = data::standin(
        args.get("standin", "toy"), args.getDouble("scale", 1.0),
        static_cast<std::uint64_t>(args.getInt("seed", 42)));
    data::writeLibsvmFile(nd.train, args.get("out", ""));
    std::printf("%zu training samples -> %s (suggested gamma %.3g, C %.3g)\n",
                nd.train.rows(), args.get("out", "").c_str(),
                nd.suggestedGamma, nd.suggestedC);
    if (args.has("test-out")) {
      data::writeLibsvmFile(nd.test, args.get("test-out", ""));
      std::printf("%zu test samples -> %s\n", nd.test.rows(),
                  args.get("test-out", "").c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casvm-datagen: %s\n", e.what());
    return 1;
  }
}
