// casvm-predict: classify a LIBSVM file with a trained casvm model.
//
//   casvm-predict --model casvm.model --data test.libsvm [--out labels.txt]
//                 [--distributed] [--workers n]
//
// --distributed routes predictions through the simulated cluster exactly
// as the paper's Algorithm 6 does (one rank per sub-model) and reports the
// communication this costs; the default scores through the compiled-batch
// serving engine (bitwise-identical decisions to the scalar path) and
// reports throughput and latency percentiles.

#include <cstdio>
#include <fstream>
#include <future>
#include <vector>

#include "casvm/core/predict.hpp"
#include "casvm/data/io.hpp"
#include "casvm/serve/engine.hpp"
#include "casvm/support/table.hpp"
#include "cli_common.hpp"

namespace {

constexpr const char* kUsage = R"(usage: casvm-predict [options]
  --model <file>   model produced by casvm-train (required)
  --data <file>    LIBSVM file to classify (required)
  --out <file>     write one predicted label per line
  --workers <n>    serving engine worker threads (default 2)
  --distributed    route through the simulated cluster (Algorithm 6)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace casvm;
  const cli::Args args(argc, argv, {"distributed", "help"});
  if (args.has("help") || !args.has("model") || !args.has("data")) {
    cli::usage(kUsage);
  }

  try {
    const core::DistributedModel model =
        core::DistributedModel::load(args.get("model", ""));
    std::size_t cols = 0;
    if (model.numModels() > 0 && !model.model(0).supportVectors().empty()) {
      cols = model.model(0).supportVectors().cols();
    }
    const data::Dataset test = data::readLibsvmFile(args.get("data", ""), cols);

    std::vector<std::int8_t> predictions(test.rows());
    double accuracy = 0.0;
    if (args.has("distributed")) {
      const core::DistributedPredictResult res =
          core::distributedPredict(model, test);
      predictions = res.predictions;
      accuracy = res.accuracy;
      std::printf("distributed prediction over %zu ranks, %s moved\n",
                  model.numModels(),
                  TablePrinter::fmtBytes(static_cast<double>(
                                             res.runStats.traffic.totalBytes()))
                      .c_str());
    } else {
      // Score through the serving engine: the model's SV sets are packed
      // into the tiled layout once, every row goes through the batched
      // micro-kernel path, and each row's reply carries its latency.
      // Decisions are bitwise-identical to the scalar predictFor loop.
      serve::ServeConfig config;
      config.workers = static_cast<int>(args.getInt("workers", 2));
      config.queueCapacity = std::max<std::size_t>(test.rows(), 1);
      serve::ServeEngine engine(
          serve::CompiledDistributedModel::compile(model), config);

      std::vector<std::future<serve::ServeReply>> inflight;
      inflight.reserve(test.rows());
      std::vector<float> row(test.cols());
      for (std::size_t i = 0; i < test.rows(); ++i) {
        test.copyRowDense(i, row);
        inflight.push_back(engine.submit(row));
      }
      std::size_t correct = 0;
      for (std::size_t i = 0; i < test.rows(); ++i) {
        const serve::ServeReply reply = inflight[i].get();
        if (reply.code != serve::ServeCode::Ok) {
          throw Error(std::string("serving engine replied ") +
                      serve::serveCodeName(reply.code));
        }
        predictions[i] = reply.label;
        correct += (predictions[i] == test.label(i));
      }
      engine.drain();
      accuracy = static_cast<double>(correct) / test.rows();

      const serve::ServeStats stats = engine.stats();
      std::printf("throughput: %.0f rows/s (%d workers, mean batch %.1f rows)\n",
                  stats.qps, config.workers, stats.meanBatchRows);
      std::printf("latency: p50 %.0fus  p95 %.0fus  p99 %.0fus  max %.0fus\n",
                  stats.latencyP50 * 1e6, stats.latencyP95 * 1e6,
                  stats.latencyP99 * 1e6, stats.latencyMax * 1e6);
    }
    std::printf("accuracy: %.2f%% (%zu samples)\n", 100.0 * accuracy,
                test.rows());

    if (args.has("out")) {
      std::ofstream out(args.get("out", ""));
      if (!out.good()) throw Error("cannot open output file");
      for (std::int8_t y : predictions) out << int(y) << '\n';
      std::printf("labels written to %s\n", args.get("out", "").c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casvm-predict: %s\n", e.what());
    return 1;
  }
}
