// casvm-predict: classify a LIBSVM file with a trained casvm model.
//
//   casvm-predict --model casvm.model --data test.libsvm [--out labels.txt]
//                 [--distributed]
//
// --distributed routes predictions through the simulated cluster exactly
// as the paper's Algorithm 6 does (one rank per sub-model) and reports the
// communication this costs; the default predicts in-process.

#include <cstdio>
#include <fstream>

#include "casvm/core/predict.hpp"
#include "casvm/data/io.hpp"
#include "casvm/support/table.hpp"
#include "cli_common.hpp"

namespace {

constexpr const char* kUsage = R"(usage: casvm-predict [options]
  --model <file>   model produced by casvm-train (required)
  --data <file>    LIBSVM file to classify (required)
  --out <file>     write one predicted label per line
  --distributed    route through the simulated cluster (Algorithm 6)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace casvm;
  const cli::Args args(argc, argv, {"distributed", "help"});
  if (args.has("help") || !args.has("model") || !args.has("data")) {
    cli::usage(kUsage);
  }

  try {
    const core::DistributedModel model =
        core::DistributedModel::load(args.get("model", ""));
    std::size_t cols = 0;
    if (model.numModels() > 0 && !model.model(0).supportVectors().empty()) {
      cols = model.model(0).supportVectors().cols();
    }
    const data::Dataset test = data::readLibsvmFile(args.get("data", ""), cols);

    std::vector<std::int8_t> predictions(test.rows());
    double accuracy = 0.0;
    if (args.has("distributed")) {
      const core::DistributedPredictResult res =
          core::distributedPredict(model, test);
      predictions = res.predictions;
      accuracy = res.accuracy;
      std::printf("distributed prediction over %zu ranks, %s moved\n",
                  model.numModels(),
                  TablePrinter::fmtBytes(static_cast<double>(
                                             res.runStats.traffic.totalBytes()))
                      .c_str());
    } else {
      std::size_t correct = 0;
      for (std::size_t i = 0; i < test.rows(); ++i) {
        predictions[i] = model.predictFor(test, i);
        correct += (predictions[i] == test.label(i));
      }
      accuracy = static_cast<double>(correct) / test.rows();
    }
    std::printf("accuracy: %.2f%% (%zu samples)\n", 100.0 * accuracy,
                test.rows());

    if (args.has("out")) {
      std::ofstream out(args.get("out", ""));
      if (!out.good()) throw Error("cannot open output file");
      for (std::int8_t y : predictions) out << int(y) << '\n';
      std::printf("labels written to %s\n", args.get("out", "").c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casvm-predict: %s\n", e.what());
    return 1;
  }
}
