// casvm-serve: load generator for the batched inference engine.
//
//   casvm-serve --model casvm.model --data test.libsvm [options]
//   casvm-serve --smoke
//
// Compiles the saved model (SV sets packed into the tiled layout once at
// load), starts a ServeEngine and drives it either closed-loop (a fixed
// number of synchronous clients, each waiting for its reply before sending
// the next request) or open-loop (requests dispatched at a fixed target
// rate regardless of completions, the honest way to observe shedding).
// Emits BENCH_SERVE.json with client-side throughput, per-code tallies and
// the engine's own stats snapshot.
//
// --smoke is fully self-contained for CI: it trains a tiny model on the
// `toy` stand-in in-process, runs one closed-loop and one open-loop pass,
// and fails loudly if any request went unaccounted for.

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "casvm/core/distributed_model.hpp"
#include "casvm/data/io.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/serve/engine.hpp"
#include "casvm/solver/smo.hpp"
#include "cli_common.hpp"

namespace {

using namespace casvm;

constexpr const char* kUsage = R"(usage: casvm-serve [options]
  --model <file>      model produced by casvm-train (required unless --smoke)
  --data <file>       LIBSVM file to draw queries from (required unless --smoke)
  --mode <m>          closed | open (default closed)
  --requests <n>      total requests to send (default 20000)
  --concurrency <c>   closed-loop client threads (default 4)
  --rate <r>          open-loop dispatch rate, requests/s (default 50000)
  --workers <w>       engine scoring threads (default 2)
  --batch-size <b>    micro-batch flush threshold (default 32)
  --max-wait-us <u>   micro-batch linger after first request (default 200)
  --queue-cap <q>     admission-control queue bound (default 1024)
  --timeout-us <t>    per-request deadline, 0 = none (default 0)
  --out <file>        JSON output path (default BENCH_SERVE.json)
  --smoke             self-contained CI run on the toy stand-in
)";

std::vector<std::vector<float>> buildQueries(const data::Dataset& ds) {
  std::vector<std::vector<float>> queries(ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    queries[i].resize(ds.cols());
    ds.copyRowDense(i, queries[i]);
  }
  return queries;
}

struct RunResult {
  std::string mode;
  std::size_t requests = 0;
  std::size_t concurrency = 0;  // closed loop only
  double rate = 0.0;            // open loop only
  std::uint64_t ok = 0;
  std::uint64_t shedded = 0;
  std::uint64_t timedOut = 0;
  std::uint64_t stopped = 0;
  double clientSeconds = 0.0;
  serve::ServeStats engine;

  double clientQps() const {
    return clientSeconds > 0.0 ? double(ok) / clientSeconds : 0.0;
  }
  bool accounted() const {
    return ok + shedded + timedOut + stopped == requests;
  }
};

void tally(RunResult& r, serve::ServeCode code) {
  switch (code) {
    case serve::ServeCode::Ok: ++r.ok; break;
    case serve::ServeCode::Shed: ++r.shedded; break;
    case serve::ServeCode::Timeout: ++r.timedOut; break;
    case serve::ServeCode::Stopped: ++r.stopped; break;
  }
}

/// Closed loop: each client submits, waits for the reply, repeats. Offered
/// load self-limits to the engine's service rate.
RunResult runClosed(serve::ServeEngine& engine,
                    const std::vector<std::vector<float>>& queries,
                    std::size_t concurrency, std::size_t totalRequests) {
  RunResult result;
  result.mode = "closed";
  result.requests = totalRequests;
  result.concurrency = concurrency;

  std::atomic<std::size_t> next{0};
  std::mutex tallyMutex;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (std::size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&] {
      RunResult local;
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= totalRequests) break;
        const serve::ServeReply reply =
            engine.score(queries[i % queries.size()]);
        tally(local, reply.code);
      }
      std::lock_guard<std::mutex> lock(tallyMutex);
      result.ok += local.ok;
      result.shedded += local.shedded;
      result.timedOut += local.timedOut;
      result.stopped += local.stopped;
    });
  }
  for (auto& c : clients) c.join();
  result.clientSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.engine = engine.stats();
  return result;
}

/// Open loop: dispatch at the target rate without waiting for replies, so
/// an overloaded engine sheds instead of silently slowing the generator.
RunResult runOpen(serve::ServeEngine& engine,
                  const std::vector<std::vector<float>>& queries, double rate,
                  std::size_t totalRequests) {
  RunResult result;
  result.mode = "open";
  result.requests = totalRequests;
  result.rate = rate;

  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      rate > 0.0 ? 1.0 / rate : 0.0));
  std::vector<std::future<serve::ServeReply>> inflight;
  inflight.reserve(totalRequests);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < totalRequests; ++i) {
    std::this_thread::sleep_until(t0 + period * static_cast<long long>(i));
    inflight.push_back(engine.submit(queries[i % queries.size()]));
  }
  for (auto& f : inflight) tally(result, f.get().code);
  result.clientSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.engine = engine.stats();
  return result;
}

void printRun(const RunResult& r) {
  std::printf(
      "%-6s  requests %zu  ok %" PRIu64 "  shed %" PRIu64 "  timeout %" PRIu64
      "  stopped %" PRIu64 "  %.3fs  %.0f qps\n",
      r.mode.c_str(), r.requests, r.ok, r.shedded, r.timedOut, r.stopped,
      r.clientSeconds, r.clientQps());
  std::printf("        engine %s\n", r.engine.toJson().c_str());
}

void writeJson(const std::string& path, bool smoke,
               const serve::CompiledDistributedModel& model,
               const std::vector<RunResult>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot open " + path + " for writing");
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(f,
               "  \"model\": {\"sub_models\": %zu, \"support_vectors\": %zu, "
               "\"cols\": %zu, \"packed_bytes\": %zu},\n",
               model.numModels(), model.totalSupportVectors(), model.cols(),
               model.packedBytes());
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(f, "    {\"mode\": \"%s\", \"requests\": %zu, ",
                 r.mode.c_str(), r.requests);
    if (r.mode == "closed") {
      std::fprintf(f, "\"concurrency\": %zu, ", r.concurrency);
    } else {
      std::fprintf(f, "\"rate\": %.0f, ", r.rate);
    }
    std::fprintf(f,
                 "\"ok\": %" PRIu64 ", \"shed\": %" PRIu64
                 ", \"timeout\": %" PRIu64 ", \"stopped\": %" PRIu64 ", ",
                 r.ok, r.shedded, r.timedOut, r.stopped);
    std::fprintf(f, "\"client_seconds\": %.6f, \"client_qps\": %.1f,\n",
                 r.clientSeconds, r.clientQps());
    std::fprintf(f, "     \"engine\": %s}%s\n", r.engine.toJson().c_str(),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu runs)\n", path.c_str(), runs.size());
}

/// Train a small model on the toy stand-in so --smoke needs no files.
core::DistributedModel smokeModel(const data::Dataset& train) {
  solver::SolverOptions so;
  so.kernel = kernel::KernelParams::gaussian(0.5);
  so.C = 1.0;
  return core::DistributedModel::single(
      solver::SmoSolver(so).solve(train).model);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casvm;
  const cli::Args args(argc, argv, {"smoke", "help"});
  const bool smoke = args.has("smoke");
  if (args.has("help") || (!smoke && (!args.has("model") || !args.has("data")))) {
    cli::usage(kUsage);
  }

  try {
    serve::CompiledDistributedModel compiled;
    std::vector<std::vector<float>> queries;
    if (smoke) {
      const data::NamedDataset toy = data::standin("toy", 0.25, 7);
      compiled = serve::CompiledDistributedModel::compile(smokeModel(toy.train));
      queries = buildQueries(toy.test);
    } else {
      const core::DistributedModel model =
          core::DistributedModel::load(args.get("model", ""));
      compiled = serve::CompiledDistributedModel::compile(model);
      queries = buildQueries(
          data::readLibsvmFile(args.get("data", ""), compiled.cols()));
    }
    if (queries.empty()) throw Error("no query rows");
    std::printf("model: %zu sub-model(s), %zu SVs, %zu features, %zu KiB packed\n",
                compiled.numModels(), compiled.totalSupportVectors(),
                compiled.cols(), compiled.packedBytes() / 1024);

    serve::ServeConfig config;
    config.workers = static_cast<int>(args.getInt("workers", 2));
    config.batchSize =
        static_cast<std::size_t>(args.getInt("batch-size", 32));
    config.maxWaitUs = args.getInt("max-wait-us", 200);
    config.queueCapacity =
        static_cast<std::size_t>(args.getInt("queue-cap", 1024));
    config.requestTimeoutUs = args.getInt("timeout-us", 0);

    const std::size_t requests = static_cast<std::size_t>(
        args.getInt("requests", smoke ? 2000 : 20000));
    const std::string mode = args.get("mode", "closed");

    std::vector<RunResult> runs;
    if (smoke || mode == "closed") {
      serve::ServeEngine engine(compiled, config);
      runs.push_back(runClosed(
          engine, queries,
          static_cast<std::size_t>(args.getInt("concurrency", 4)), requests));
      engine.drain();
      printRun(runs.back());
    }
    if (smoke || mode == "open") {
      serve::ServeEngine engine(compiled, config);
      runs.push_back(runOpen(engine, queries,
                             args.getDouble("rate", smoke ? 20000.0 : 50000.0),
                             requests));
      engine.drain();
      printRun(runs.back());
    }

    writeJson(args.get("out", "BENCH_SERVE.json"), smoke, compiled, runs);

    // Admission control promises every request an explicit outcome; a
    // mismatch here means a reply was dropped on the floor.
    for (const RunResult& r : runs) {
      if (!r.accounted()) {
        std::fprintf(stderr, "casvm-serve: %s run lost replies\n",
                     r.mode.c_str());
        return 1;
      }
      if (smoke && r.ok == 0) {
        std::fprintf(stderr, "casvm-serve: %s smoke run scored nothing\n",
                     r.mode.c_str());
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casvm-serve: %s\n", e.what());
    return 1;
  }
}
