// casvm-serve: load generator for the batched inference engine.
//
//   casvm-serve --model casvm.model --data test.libsvm [options]
//   casvm-serve --smoke
//
// Compiles the saved model (SV sets packed into the tiled layout once at
// load), starts a ServeEngine and drives it either closed-loop (a fixed
// number of synchronous clients, each waiting for its reply before sending
// the next request) or open-loop (requests dispatched at a fixed target
// rate regardless of completions, the honest way to observe shedding).
// Emits BENCH_SERVE.json with client-side throughput, per-code tallies and
// the engine's own post-drain stats snapshot (health included).
//
// Robustness knobs: --swap-every N hot-swaps the model mid-run every N
// dispatched requests (zero-downtime publish; the engine JSON reports the
// swap count and final generation), --low-frac sends a fraction of the
// load as low-priority (shed-first) requests, and --health-json writes the
// final health/stats snapshot to its own probe file. SIGTERM is a
// graceful shutdown: dispatch stops, every in-flight future is collected,
// the engine drains, and the JSON artifacts are still written — the chaos
// CI job SIGTERMs a run mid-load and asserts exactly that.
//
// --smoke is fully self-contained for CI: it trains a tiny model on the
// `toy` stand-in in-process, runs one closed-loop pass, one open-loop pass
// and one open-loop pass with hot-swaps and a priority mix, and fails
// loudly if any request went unaccounted for.

#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "casvm/core/distributed_model.hpp"
#include "casvm/data/io.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/serve/engine.hpp"
#include "casvm/solver/smo.hpp"
#include "cli_common.hpp"

namespace {

using namespace casvm;

constexpr const char* kUsage = R"(usage: casvm-serve [options]
  --model <file>      model produced by casvm-train (required unless --smoke)
  --data <file>       LIBSVM file to draw queries from (required unless --smoke)
  --mode <m>          closed | open (default closed)
  --requests <n>      total requests to send (default 20000)
  --concurrency <c>   closed-loop client threads (default 4)
  --rate <r>          open-loop dispatch rate, requests/s (default 50000)
  --workers <w>       engine scoring threads (default 2)
  --batch-size <b>    micro-batch flush threshold (default 32)
  --max-wait-us <u>   micro-batch linger after first request (default 200)
  --queue-cap <q>     admission-control queue bound (default 1024)
  --timeout-us <t>    per-request deadline, 0 = none (default 0)
  --inject-delay-us <d>  stall each scoring pass (chaos/CI pressure knob)
  --swap-every <n>    hot-swap the model every n dispatched requests (0 = off)
  --low-frac <f>      fraction of requests sent low-priority (default 0)
  --out <file>        JSON output path (default BENCH_SERVE.json)
  --health-json <f>   also write the final engine health/stats snapshot to f
  --smoke             self-contained CI run on the toy stand-in
)";

// SIGTERM/SIGINT request a graceful shutdown: stop dispatching, collect
// every outstanding future, drain, write the JSON artifacts, exit 0.
std::atomic<bool> gStop{false};

void onSignal(int) { gStop.store(true); }

std::vector<std::vector<float>> buildQueries(const data::Dataset& ds) {
  std::vector<std::vector<float>> queries(ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    queries[i].resize(ds.cols());
    ds.copyRowDense(i, queries[i]);
  }
  return queries;
}

struct LoadOptions {
  std::size_t swapEvery = 0;  ///< publish() every n dispatched requests
  double lowFrac = 0.0;       ///< fraction of requests sent Priority::Low
};

struct RunResult {
  std::string mode;
  std::size_t requests = 0;     // dispatched (== target unless interrupted)
  std::size_t concurrency = 0;  // closed loop only
  double rate = 0.0;            // open loop only
  std::uint64_t ok = 0;
  std::uint64_t shedded = 0;
  std::uint64_t timedOut = 0;
  std::uint64_t stopped = 0;
  std::uint64_t badRequest = 0;
  bool interrupted = false;
  double clientSeconds = 0.0;
  serve::ServeStats engine;  // post-drain snapshot

  double clientQps() const {
    return clientSeconds > 0.0 ? double(ok) / clientSeconds : 0.0;
  }
  bool accounted() const {
    return ok + shedded + timedOut + stopped + badRequest == requests;
  }
};

void tally(RunResult& r, serve::ServeCode code) {
  switch (code) {
    case serve::ServeCode::Ok: ++r.ok; break;
    case serve::ServeCode::Shed: ++r.shedded; break;
    case serve::ServeCode::Timeout: ++r.timedOut; break;
    case serve::ServeCode::Stopped: ++r.stopped; break;
    case serve::ServeCode::BadRequest: ++r.badRequest; break;
  }
}

serve::SubmitOptions optionsFor(std::size_t i, const LoadOptions& load) {
  serve::SubmitOptions options;
  if (load.lowFrac > 0.0 &&
      double(i % 100) < load.lowFrac * 100.0) {
    options.priority = serve::Priority::Low;
  }
  return options;
}

/// Hot-swap trigger: every swapEvery-th dispatched request republishes the
/// model (alternating between two identical packs, so decisions are
/// unchanged but the generation — and the swap machinery — advances).
void maybeSwap(serve::ServeEngine& engine,
               const serve::CompiledDistributedModel& pack, std::size_t i,
               const LoadOptions& load) {
  if (load.swapEvery > 0 && i > 0 && i % load.swapEvery == 0) {
    engine.publish(pack);
  }
}

/// Closed loop: each client submits, waits for the reply, repeats. Offered
/// load self-limits to the engine's service rate.
RunResult runClosed(serve::ServeEngine& engine,
                    const serve::CompiledDistributedModel& pack,
                    const std::vector<std::vector<float>>& queries,
                    std::size_t concurrency, std::size_t totalRequests,
                    const LoadOptions& load) {
  RunResult result;
  result.mode = "closed";
  result.concurrency = concurrency;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> sent{0};
  std::mutex tallyMutex;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (std::size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&] {
      RunResult local;
      for (;;) {
        if (gStop.load()) break;
        const std::size_t i = next.fetch_add(1);
        if (i >= totalRequests) break;
        maybeSwap(engine, pack, i, load);
        const serve::ServeReply reply = engine.score(
            queries[i % queries.size()], optionsFor(i, load));
        sent.fetch_add(1);
        tally(local, reply.code);
      }
      std::lock_guard<std::mutex> lock(tallyMutex);
      result.ok += local.ok;
      result.shedded += local.shedded;
      result.timedOut += local.timedOut;
      result.stopped += local.stopped;
      result.badRequest += local.badRequest;
    });
  }
  for (auto& c : clients) c.join();
  result.requests = sent.load();
  result.interrupted = gStop.load();
  result.clientSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

/// Open loop: dispatch at the target rate without waiting for replies, so
/// an overloaded engine sheds instead of silently slowing the generator.
RunResult runOpen(serve::ServeEngine& engine,
                  const serve::CompiledDistributedModel& pack,
                  const std::vector<std::vector<float>>& queries, double rate,
                  std::size_t totalRequests, const LoadOptions& load,
                  const char* modeName = "open") {
  RunResult result;
  result.mode = modeName;
  result.rate = rate;

  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      rate > 0.0 ? 1.0 / rate : 0.0));
  std::vector<std::future<serve::ServeReply>> inflight;
  inflight.reserve(totalRequests);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < totalRequests; ++i) {
    if (gStop.load()) {
      result.interrupted = true;
      break;
    }
    std::this_thread::sleep_until(t0 + period * static_cast<long long>(i));
    maybeSwap(engine, pack, i, load);
    inflight.push_back(
        engine.submit(queries[i % queries.size()], optionsFor(i, load)));
  }
  result.requests = inflight.size();
  for (auto& f : inflight) tally(result, f.get().code);
  result.clientSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

void printRun(const RunResult& r) {
  std::printf(
      "%-6s  requests %zu  ok %" PRIu64 "  shed %" PRIu64 "  timeout %" PRIu64
      "  stopped %" PRIu64 "  bad %" PRIu64 "%s  %.3fs  %.0f qps\n",
      r.mode.c_str(), r.requests, r.ok, r.shedded, r.timedOut, r.stopped,
      r.badRequest, r.interrupted ? "  [interrupted]" : "", r.clientSeconds,
      r.clientQps());
  std::printf("        engine %s\n", r.engine.toJson().c_str());
}

void writeJson(const std::string& path, bool smoke,
               const serve::CompiledDistributedModel& model,
               const std::vector<RunResult>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot open " + path + " for writing");
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(f,
               "  \"model\": {\"sub_models\": %zu, \"support_vectors\": %zu, "
               "\"cols\": %zu, \"packed_bytes\": %zu},\n",
               model.numModels(), model.totalSupportVectors(), model.cols(),
               model.packedBytes());
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(f, "    {\"mode\": \"%s\", \"requests\": %zu, ",
                 r.mode.c_str(), r.requests);
    if (r.mode == "closed") {
      std::fprintf(f, "\"concurrency\": %zu, ", r.concurrency);
    } else {
      std::fprintf(f, "\"rate\": %.0f, ", r.rate);
    }
    std::fprintf(f,
                 "\"ok\": %" PRIu64 ", \"shed\": %" PRIu64
                 ", \"timeout\": %" PRIu64 ", \"stopped\": %" PRIu64
                 ", \"bad_request\": %" PRIu64 ", \"interrupted\": %s, ",
                 r.ok, r.shedded, r.timedOut, r.stopped, r.badRequest,
                 r.interrupted ? "true" : "false");
    std::fprintf(f, "\"client_seconds\": %.6f, \"client_qps\": %.1f,\n",
                 r.clientSeconds, r.clientQps());
    std::fprintf(f, "     \"engine\": %s}%s\n", r.engine.toJson().c_str(),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu runs)\n", path.c_str(), runs.size());
}

void writeHealthJson(const std::string& path, const serve::ServeStats& stats) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot open " + path + " for writing");
  std::fprintf(f, "%s\n", stats.toJson().c_str());
  std::fclose(f);
  std::printf("wrote %s (health: %s)\n", path.c_str(), stats.health.c_str());
}

/// Train a small model on the toy stand-in so --smoke needs no files.
core::DistributedModel smokeModel(const data::Dataset& train) {
  solver::SolverOptions so;
  so.kernel = kernel::KernelParams::gaussian(0.5);
  so.C = 1.0;
  return core::DistributedModel::single(
      solver::SmoSolver(so).solve(train).model);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casvm;
  const cli::Args args(argc, argv, {"smoke", "help"});
  const bool smoke = args.has("smoke");
  if (args.has("help") || (!smoke && (!args.has("model") || !args.has("data")))) {
    cli::usage(kUsage);
  }
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);

  try {
    serve::CompiledDistributedModel compiled;
    std::vector<std::vector<float>> queries;
    if (smoke) {
      const data::NamedDataset toy = data::standin("toy", 0.25, 7);
      compiled = serve::CompiledDistributedModel::compile(smokeModel(toy.train));
      queries = buildQueries(toy.test);
    } else {
      const core::DistributedModel model =
          core::DistributedModel::load(args.get("model", ""));
      compiled = serve::CompiledDistributedModel::compile(model);
      queries = buildQueries(
          data::readLibsvmFile(args.get("data", ""), compiled.cols()));
    }
    if (queries.empty()) throw Error("no query rows");
    std::printf("model: %zu sub-model(s), %zu SVs, %zu features, %zu KiB packed\n",
                compiled.numModels(), compiled.totalSupportVectors(),
                compiled.cols(), compiled.packedBytes() / 1024);

    serve::ServeConfig config;
    config.workers = static_cast<int>(args.getInt("workers", 2));
    config.batchSize =
        static_cast<std::size_t>(args.getInt("batch-size", 32));
    config.maxWaitUs = args.getInt("max-wait-us", 200);
    config.queueCapacity =
        static_cast<std::size_t>(args.getInt("queue-cap", 1024));
    config.requestTimeoutUs = args.getInt("timeout-us", 0);
    config.injectScoreDelayUs = args.getInt("inject-delay-us", 0);

    LoadOptions load;
    load.swapEvery = static_cast<std::size_t>(args.getInt("swap-every", 0));
    load.lowFrac = args.getDouble("low-frac", 0.0);

    const std::size_t requests = static_cast<std::size_t>(
        args.getInt("requests", smoke ? 2000 : 20000));
    const std::string mode = args.get("mode", "closed");

    std::vector<RunResult> runs;
    if (smoke || mode == "closed") {
      serve::ServeEngine engine(compiled, config);
      runs.push_back(runClosed(
          engine, compiled, queries,
          static_cast<std::size_t>(args.getInt("concurrency", 4)), requests,
          load));
      engine.drain();
      runs.back().engine = engine.stats();
      printRun(runs.back());
    }
    if (smoke || mode == "open") {
      serve::ServeEngine engine(compiled, config);
      runs.push_back(runOpen(engine, compiled, queries,
                             args.getDouble("rate", smoke ? 20000.0 : 50000.0),
                             requests, load));
      engine.drain();
      runs.back().engine = engine.stats();
      printRun(runs.back());
    }
    if (smoke) {
      // Robustness pass: open loop with mid-run hot-swaps and a
      // low-priority mix, on a tighter queue with stalled scoring so the
      // shed-first and brownout paths see real pressure. Counters land in
      // the JSON.
      LoadOptions swapLoad = load;
      if (swapLoad.swapEvery == 0) swapLoad.swapEvery = 64;
      if (swapLoad.lowFrac <= 0.0) swapLoad.lowFrac = 0.25;
      serve::ServeConfig swapConfig = config;
      swapConfig.queueCapacity = 64;
      if (swapConfig.injectScoreDelayUs == 0) {
        swapConfig.injectScoreDelayUs = 2000;
      }
      serve::ServeEngine engine(compiled, swapConfig);
      runs.push_back(runOpen(engine, compiled, queries,
                             args.getDouble("rate", 20000.0), requests,
                             swapLoad, "swap"));
      engine.drain();
      runs.back().engine = engine.stats();
      printRun(runs.back());
    }

    writeJson(args.get("out", "BENCH_SERVE.json"), smoke, compiled, runs);
    if (args.has("health-json") && !runs.empty()) {
      writeHealthJson(args.get("health-json", "HEALTH.json"),
                      runs.back().engine);
    }

    // Admission control promises every request an explicit outcome; a
    // mismatch here means a reply was dropped on the floor.
    for (const RunResult& r : runs) {
      if (!r.accounted()) {
        std::fprintf(stderr, "casvm-serve: %s run lost replies\n",
                     r.mode.c_str());
        return 1;
      }
      if (smoke && !r.interrupted && r.ok == 0) {
        std::fprintf(stderr, "casvm-serve: %s smoke run scored nothing\n",
                     r.mode.c_str());
        return 1;
      }
      if (r.engine.health != "drained") {
        std::fprintf(stderr, "casvm-serve: %s run ended with health %s\n",
                     r.mode.c_str(), r.engine.health.c_str());
        return 1;
      }
      if (smoke && !r.interrupted && r.mode == "swap" &&
          r.engine.modelSwaps == 0) {
        std::fprintf(stderr, "casvm-serve: swap run performed no swaps\n");
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casvm-serve: %s\n", e.what());
    return 1;
  }
}
