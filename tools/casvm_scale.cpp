// casvm-scale: feature scaling, the svm-scale step of the LIBSVM workflow.
//
//   casvm-scale --data train.libsvm --out train.scaled --save-params s.txt
//   casvm-scale --data test.libsvm  --out test.scaled  --load-params s.txt
//
// Fit on the training split (writing the parameters), then apply the SAME
// parameters to the test split — never refit on test data.

#include <cstdio>

#include "casvm/data/io.hpp"
#include "casvm/data/scale.hpp"
#include "cli_common.hpp"

namespace {

constexpr const char* kUsage = R"(usage: casvm-scale [options]
  --data <file>         LIBSVM input (required)
  --out <file>          scaled LIBSVM output (required)
  --kind <k>            minmax (default) | standard
  --lower <l>           minmax target lower bound (default -1)
  --upper <u>           minmax target upper bound (default 1)
  --save-params <file>  fit on --data and write the parameters
  --load-params <file>  apply previously fitted parameters instead of fitting
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace casvm;
  const cli::Args args(argc, argv, {"help"});
  if (args.has("help") || !args.has("data") || !args.has("out")) {
    cli::usage(kUsage);
  }

  try {
    std::size_t cols = 0;
    if (args.has("load-params")) {
      cols = data::Scaler::load(args.get("load-params", "")).features();
    }
    const data::Dataset input =
        data::readLibsvmFile(args.get("data", ""), cols);

    data::Scaler scaler;
    if (args.has("load-params")) {
      scaler = data::Scaler::load(args.get("load-params", ""));
      std::printf("loaded %zu-feature scaler from %s\n", scaler.features(),
                  args.get("load-params", "").c_str());
    } else {
      const data::ScalingKind kind = args.get("kind", "minmax") == "standard"
                                         ? data::ScalingKind::Standard
                                         : data::ScalingKind::MinMax;
      scaler = data::Scaler::fit(input, kind, args.getDouble("lower", -1.0),
                                 args.getDouble("upper", 1.0));
      std::printf("fitted %s scaler on %zu samples\n",
                  args.get("kind", "minmax").c_str(), input.rows());
      if (args.has("save-params")) {
        scaler.save(args.get("save-params", ""));
        std::printf("parameters written to %s\n",
                    args.get("save-params", "").c_str());
      }
    }

    data::writeLibsvmFile(scaler.apply(input), args.get("out", ""));
    std::printf("%zu scaled samples -> %s\n", input.rows(),
                args.get("out", "").c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casvm-scale: %s\n", e.what());
    return 1;
  }
}
