// casvm-model: what-if scaling exploration from the calibrated analytic
// model (the machinery behind the Tables XIX-XXII benches, exposed as a
// tool). Calibrates against real solves of a stand-in (or your LIBSVM
// file) and prints modeled training time for every method over a process
// sweep, strong- or weak-scaling.
//
//   casvm-model --mode strong --m 128000 --procs 96,192,384,768,1536
//   casvm-model --mode weak --per-node 2000 --procs 96,384,1536
//   casvm-model --standin usps --mode strong --m 266079

#include <cstdio>
#include <sstream>

#include "casvm/data/io.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/perf/scaling_sim.hpp"
#include "casvm/support/table.hpp"
#include "cli_common.hpp"

namespace {

constexpr const char* kUsage = R"(usage: casvm-model [options]
  --mode <strong|weak>  sweep type (default strong)
  --m <count>           total samples for strong scaling (default 128000)
  --per-node <count>    samples per node for weak scaling (default 2000)
  --procs <list>        comma-separated process counts (default 96..1536)
  --standin <name>      calibration dataset (default epsilon)
  --data <file>         calibrate on a LIBSVM file instead
  --gamma <g> --C <c>   solver parameters for calibration
  --alpha <s>           interconnect latency seconds (default 1.5e-6)
  --beta <s>            interconnect seconds/byte (default 1.25e-10)
)";

std::vector<int> parseProcs(const std::string& list) {
  std::vector<int> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int p = std::atoi(item.c_str());
    if (p > 0) out.push_back(p);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casvm;
  const cli::Args args(argc, argv, {"help"});
  if (args.has("help")) cli::usage(kUsage);

  try {
    data::Dataset calData;
    double gamma = args.getDouble("gamma", 0.0);
    if (args.has("data")) {
      calData = data::readLibsvmFile(args.get("data", ""));
      if (gamma == 0.0) gamma = 1.0 / static_cast<double>(calData.cols());
    } else {
      const data::NamedDataset nd =
          data::standin(args.get("standin", "epsilon"));
      calData = nd.train;
      if (gamma == 0.0) gamma = nd.suggestedGamma;
    }

    solver::SolverOptions sopts;
    sopts.kernel = kernel::KernelParams::gaussian(gamma);
    sopts.C = args.getDouble("C", 1.0);
    perf::ScalingCalibration cal = perf::calibrate(
        calData, sopts,
        {calData.rows() / 8, calData.rows() / 4, calData.rows() / 2});
    cal.cost.alpha = args.getDouble("alpha", cal.cost.alpha);
    cal.cost.beta = args.getDouble("beta", cal.cost.beta);
    std::printf(
        "calibration: %.3f iters/sample, %.2e s/(iter*row), SV fraction "
        "%.2f, K-means imbalance %.2f (growth P^%.2f), n=%lld\n",
        cal.itersPerSample, cal.secPerIterRow, cal.svFraction,
        cal.cpImbalance, cal.cpImbalanceGrowth, cal.features);

    const bool weak = args.get("mode", "strong") == "weak";
    const std::vector<int> procs =
        parseProcs(args.get("procs", "96,192,384,768,1536"));
    const long long mStrong = args.getInt("m", 128000);
    const long long perNode = args.getInt("per-node", 2000);

    std::vector<std::string> headers{"method"};
    for (int p : procs) headers.push_back("P=" + std::to_string(p));
    headers.push_back(weak ? "weak eff" : "strong eff");
    TablePrinter table(std::move(headers));

    for (core::Method method : core::allMethods()) {
      std::vector<std::string> row{core::methodName(method)};
      double t0 = 0.0, tLast = 0.0;
      for (std::size_t i = 0; i < procs.size(); ++i) {
        const long long m = weak ? perNode * procs[i] : mStrong;
        const double t =
            perf::modeledTrainTime(method, cal, m, procs[i]).total();
        if (i == 0) t0 = t;
        tLast = t;
        row.push_back(TablePrinter::fmt(t, t < 10 ? 2 : 1) + "s");
      }
      const double eff = weak
                             ? t0 / tLast
                             : t0 * procs.front() / (tLast * procs.back());
      row.push_back(TablePrinter::fmtPercent(eff));
      table.addRow(std::move(row));
    }
    table.print();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casvm-model: %s\n", e.what());
    return 1;
  }
}
