#pragma once

/// \file smo.hpp
/// Sequential Minimal Optimization (Platt 1999, with Keerthi's two-threshold
/// working-set selection) — the paper's Algorithm 1 and the shared building
/// block of every distributed method in this repository ("all the methods
/// are based on the same shared-memory SMO implementation", §V).
///
/// The solver maintains the optimality gradient f_i = sum_j a_j y_j K_ij - y_i
/// (eqn. 4), repeatedly picks the maximal-violating pair (i_high, i_low),
/// solves the two-variable subproblem analytically (eqns. 6-7) and updates
/// f with the pair's two kernel rows (eqn. 5). Convergence is declared when
/// b_low <= b_high + 2*tolerance.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "casvm/data/dataset.hpp"
#include "casvm/kernel/kernel.hpp"
#include "casvm/kernel/row_source.hpp"
#include "casvm/solver/model.hpp"

namespace casvm::obs {
class Lane;
}

namespace casvm::solver {

/// Working-set selection strategy.
enum class Selection : std::uint8_t {
  /// Maximal-violating pair (first-order; the paper's formulation).
  FirstOrder = 0,
  /// Second-order selection of i_low (Fan, Chen & Lin 2005); usually fewer
  /// iterations at slightly more work per iteration. Provided as the
  /// optional refinement the paper cites as related work [21].
  SecondOrder = 1,
};

/// Complete mid-solve state at the top of one SMO iteration. Restoring a
/// snapshot and continuing reproduces the uninterrupted run bitwise: the
/// gradient f is carried verbatim (reconstructing it from alpha would give
/// a different floating-point rounding), and the active/shrunk bookkeeping
/// is preserved so working-set scans visit samples in the same order.
struct SolverSnapshot {
  std::size_t iteration = 0;
  bool everShrunk = false;
  std::vector<double> alpha;          ///< by training row
  std::vector<double> f;              ///< optimality gradient, by row
  std::vector<std::size_t> active;    ///< active working set, in scan order
};

struct SolverOptions {
  kernel::KernelParams kernel = kernel::KernelParams::gaussian(1.0);
  double C = 1.0;               ///< box constraint (eqn. 2)
  double tolerance = 1e-3;      ///< KKT tolerance tau
  std::size_t maxIterations = 0;  ///< 0 = auto (100*m + 10000)
  std::size_t cacheBytes = 64ull << 20;  ///< kernel row cache budget
  Selection selection = Selection::FirstOrder;
  /// Per-class box scaling: positive samples get C * positiveWeight,
  /// negative samples C * negativeWeight. Raising positiveWeight counters
  /// class imbalance (e.g. the `face` workload's ~5% positives) by making
  /// positive margin violations more expensive.
  double positiveWeight = 1.0;
  double negativeWeight = 1.0;
  /// Shrinking (LIBSVM-style): temporarily drop samples whose alpha sits
  /// at a bound and whose gradient says it will stay there, so the
  /// selection scan and the gradient update run over a shrinking active
  /// set. Before declaring convergence the full gradient is reconstructed
  /// and every sample reactivated, so the solution is identical up to the
  /// tolerance — only faster to reach on large problems.
  bool shrinking = false;
  /// Iterations between shrink passes (when shrinking is on).
  std::size_t shrinkInterval = 1000;
  /// Optional trace lane: when set, the solver emits a periodic progress
  /// instant (iteration, active-set size, duality gap, cache hit rate)
  /// every `traceInterval` iterations. Costs one branch per iteration when
  /// unset. The lane must outlive the solve.
  obs::Lane* trace = nullptr;
  /// Added to the solver's CPU-relative timestamps so progress events line
  /// up with the caller's (virtual) timeline — SPMD drivers pass the
  /// rank's virtual now at solve start.
  double traceTimeOffset = 0.0;
  /// Iterations between progress events (must be > 0 when tracing).
  std::size_t traceInterval = 512;
  /// Checkpoint cadence: when `snapshotSink` is set, the solver hands a
  /// SolverSnapshot to it every `snapshotInterval` iterations (at the top
  /// of the iteration, before any state of that iteration mutates). The
  /// sink may throw — the solver does not catch; a sink that persists the
  /// snapshot and then aborts leaves a resumable state on disk.
  std::size_t snapshotInterval = 0;  ///< 0 = no snapshots
  std::function<void(const SolverSnapshot&)> snapshotSink;
  /// Resume a previously snapshotted solve mid-stream. When set, `solve()`
  /// restores alpha/f/active/everShrunk/iteration verbatim and continues;
  /// `initialAlpha` is ignored. The snapshot must come from a solve over
  /// the same dataset and options, or the result is meaningless. The
  /// pointee must outlive the call.
  const SolverSnapshot* resumeFrom = nullptr;
  /// Where the solver's kernel rows and diagonal come from. nullptr (the
  /// default) means the exact kernel of `ds`; the low-rank backend passes a
  /// lowrank::LowRankKernel here so every row fill becomes a Z·Zᵀ tile-dot.
  /// The source's rows() must equal ds.rows() and the pointee must outlive
  /// the call. Model extraction always uses the exact kernel over the
  /// support vectors regardless (train-approximate, predict-exact).
  kernel::RowSource* rowSource = nullptr;
};

struct SolverResult {
  Model model;
  std::vector<double> alpha;   ///< full-length alpha (by training row)
  std::size_t iterations = 0;
  bool converged = false;
  double objective = 0.0;      ///< dual objective F(alpha) (eqn. 1)
  double seconds = 0.0;        ///< wall time spent in solve()
  std::size_t kernelRowsComputed = 0;  ///< cache misses (full rows)
  std::size_t kernelRowHits = 0;       ///< cache hits
};

/// Single-node SMO solver. Stateless between solves; safe to reuse.
class SmoSolver {
 public:
  explicit SmoSolver(SolverOptions options);

  const SolverOptions& options() const { return options_; }

  /// Train on `ds`. `initialAlpha` (optional, same length as ds.rows())
  /// warm-starts the solve — the Cascade/DC filter passes support-vector
  /// alphas from the previous layer for exactly this purpose. Values are
  /// clipped to [0, C]; the caller is responsible for the equality
  /// constraint holding approximately (merging feasible sub-solutions
  /// preserves it).
  SolverResult solve(const data::Dataset& ds,
                     std::span<const double> initialAlpha = {}) const;

 private:
  SolverOptions options_;
};

}  // namespace casvm::solver
