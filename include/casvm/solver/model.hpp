#pragma once

/// \file model.hpp
/// The trained SVM model: support vectors, their alpha*y coefficients and
/// the bias term. Evaluating eqn. (3) of the paper,
///   yhat(x) = sign( sum_i alpha_i y_i K(x_i, x) + b ),
/// is all prediction does; models are compact because only samples with
/// nonzero alpha (the support vectors) are stored.

#include <cstddef>
#include <span>
#include <vector>

#include "casvm/data/dataset.hpp"
#include "casvm/kernel/kernel.hpp"

namespace casvm::solver {

class Model {
 public:
  Model() = default;
  Model(kernel::KernelParams params, data::Dataset supportVectors,
        std::vector<double> alphaY, double bias);

  const kernel::KernelParams& kernelParams() const { return params_; }
  const data::Dataset& supportVectors() const { return svs_; }
  const std::vector<double>& alphaY() const { return alphaY_; }
  double bias() const { return bias_; }
  std::size_t numSupportVectors() const { return svs_.rows(); }
  bool empty() const { return svs_.empty(); }

  /// Decision value for a dense feature vector (length = feature count).
  double decision(std::span<const float> x) const;

  /// Decision value for row i of another dataset (dense or sparse).
  double decisionFor(const data::Dataset& ds, std::size_t i) const;

  /// Predicted label (+1/-1) for row i of another dataset.
  std::int8_t predictFor(const data::Dataset& ds, std::size_t i) const {
    return decisionFor(ds, i) >= 0.0 ? 1 : -1;
  }

  /// Fraction of rows of `testSet` classified correctly.
  double accuracy(const data::Dataset& testSet) const;

  /// Wire/disk serialization.
  std::vector<std::byte> pack() const;
  static Model unpack(std::span<const std::byte> bytes);

  /// Save to / load from a file (same format as pack()).
  void save(const std::string& path) const;
  static Model load(const std::string& path);

 private:
  kernel::KernelParams params_;
  kernel::Kernel kernel_{kernel::KernelParams{}};  ///< built once, not per call
  data::Dataset svs_;
  std::vector<double> alphaY_;
  double bias_ = 0.0;
};

}  // namespace casvm::solver
