#pragma once

/// \file compiled_model.hpp
/// Load-time compilation of a trained SVM model into a batch scoring form.
///
/// The scalar predict path (Model::decisionFor) walks the SV set one
/// support vector at a time through per-element kernel evaluations. A
/// CompiledModel instead packs the SV set once at load time — dense SVs
/// into the same 16-row k-major float tiling the solver's RowWorkspace
/// uses, sparse SVs as a CSR copy — precomputes the SV self-norms, and
/// scores whole batches of queries through the runtime-dispatched blocked
/// tile-dot micro-kernel (kernel::tile).
///
/// Bitwise contract: decision values are bitwise-identical to the scalar
/// path (Model::decisionFor for rows of a Dataset, Model::decision for raw
/// dense vectors). Every query's dot against an SV accumulates serially
/// over ascending feature index into one double with multiplies kept
/// separate from adds, exactly like Dataset::dot/dotWith; products at
/// features where one side is zero contribute ±0.0, which never changes a
/// running sum that started at +0.0. The kernel transform and the
/// bias + sum_s alphaY[s]*K_s reduction replicate the scalar operation
/// order element for element.
///
/// Scoring is const and thread-safe; per-call scratch is caller-owned
/// (one BatchScratch per worker thread).

#include <cstddef>
#include <span>
#include <vector>

#include "casvm/data/dataset.hpp"
#include "casvm/kernel/kernel.hpp"

namespace casvm::serve {

/// Reusable per-thread scratch for batch scoring; scoring allocates only
/// on first use (buffers are grown, never shrunk).
struct BatchScratch {
  std::vector<double> xd;    ///< densified query (cols doubles)
  std::vector<double> kval;  ///< per-SV kernel values for one query
  // Ensemble-level scratch (routing / per-group gather):
  std::vector<std::size_t> route;      ///< per-row sub-model index
  std::vector<std::size_t> groupRows;  ///< dataset rows of one group
  std::vector<std::size_t> groupPos;   ///< output slots of one group
  std::vector<double> sub;             ///< gathered per-group outputs
  std::vector<double> pairDecisions;   ///< multiclass: pairs x batch matrix
};

/// A support-vector set packed for batch kernel-row evaluation: blocked
/// float tiles for dense storage, a CSR copy for sparse storage, plus the
/// cached SV self-norms. Self-contained — the source Dataset may be freed.
class CompiledSvSet {
 public:
  CompiledSvSet() = default;
  explicit CompiledSvSet(const data::Dataset& svs);

  std::size_t size() const { return count_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return count_ == 0; }
  bool dense() const { return dense_; }
  double selfDot(std::size_t s) const { return selfDots_[s]; }

  /// kval[0..size) = xs . query, where the query is row i of `ds`
  /// (densified into scratch.xd first; works for dense and sparse queries).
  void dotRow(const data::Dataset& ds, std::size_t i, std::span<double> kval,
              BatchScratch& scratch) const;

  /// kval[0..size) = xs . x for a raw dense query vector.
  void dotVector(std::span<const float> x, std::span<double> kval,
                 BatchScratch& scratch) const;

  /// Memory held by the packed SV data in bytes (tiles or CSR).
  std::size_t packedBytes() const;

 private:
  void dotAgainstScratch(std::span<double> kval, BatchScratch& scratch) const;

  std::size_t count_ = 0;
  std::size_t cols_ = 0;
  bool dense_ = true;
  std::vector<double> selfDots_;
  std::vector<float> tiles_;  // dense: blockCount(count)*cols*16 floats
  std::vector<std::size_t> rowPtr_;    // sparse CSR copy
  std::vector<std::uint32_t> colIdx_;
  std::vector<float> vals_;
};

/// Apply the kernel transform in place over raw SV dots for one query:
/// kval[s] = K(sv_s, q) given dot(sv_s, q), ||sv_s||^2 and ||q||^2.
/// Operation order matches kernel::Kernel::fromDot element for element.
void transformDots(const kernel::KernelParams& params, const CompiledSvSet& svs,
                   double querySelfDot, std::span<double> kval);

/// A binary SVM model compiled for batch scoring (see file comment).
class CompiledModel {
 public:
  CompiledModel() = default;

  /// Compile from model components. `svs` may be empty (bias-only model).
  CompiledModel(kernel::KernelParams params, const data::Dataset& svs,
                std::vector<double> alphaY, double bias);

  const kernel::KernelParams& kernelParams() const { return params_; }
  const CompiledSvSet& supportVectors() const { return svs_; }
  std::size_t numSupportVectors() const { return svs_.size(); }
  std::size_t cols() const { return svs_.cols(); }
  bool empty() const { return svs_.empty(); }
  double bias() const { return bias_; }

  /// out[j] = decision value for row rows[j] of `ds`. Bitwise-identical to
  /// Model::decisionFor(ds, rows[j]).
  void decisionBatch(const data::Dataset& ds, std::span<const std::size_t> rows,
                     std::span<double> out, BatchScratch& scratch) const;

  /// out[i] = decision value for row i, for every row of `ds`.
  void decisionAll(const data::Dataset& ds, std::span<double> out,
                   BatchScratch& scratch) const;

  /// Decision value for a raw dense feature vector; bitwise-identical to
  /// Model::decision(x).
  double decision(std::span<const float> x, BatchScratch& scratch) const;

 private:
  double reduce(std::span<const double> kval) const;

  kernel::KernelParams params_{};
  CompiledSvSet svs_;
  std::vector<double> alphaY_;
  double bias_ = 0.0;
};

}  // namespace casvm::serve
