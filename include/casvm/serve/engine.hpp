#pragma once

/// \file engine.hpp
/// The serving runtime: a worker thread pool pulling from a bounded MPMC
/// request queue with micro-batching and admission control.
///
/// Requests are single dense feature vectors. submit() either admits the
/// request (future resolves once a worker scores it) or sheds it
/// immediately with an explicit result code when the queue is at capacity
/// — requests are never dropped silently. Workers collect micro-batches:
/// a batch flushes when it reaches `batchSize` rows or `maxWaitUs`
/// microseconds after its first request, whichever comes first, and the
/// whole batch is scored in one pass through the compiled model (batch
/// routing included). drain() performs a graceful shutdown: new submits
/// are rejected with Stopped, everything already queued is scored, then
/// the workers exit.
///
/// Scored decisions are bitwise-identical to the scalar predict path —
/// the compiled model's contract (see compiled_model.hpp) carries through
/// the engine unchanged.

#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "casvm/serve/compiled_ensemble.hpp"
#include "casvm/serve/queue.hpp"
#include "casvm/serve/stats.hpp"

namespace casvm::obs {
class Lane;
class TraceRecorder;
}

namespace casvm::serve {

struct ServeConfig {
  int workers = 2;                ///< scoring threads (>= 1)
  std::size_t batchSize = 32;     ///< micro-batch flush threshold (>= 1)
  long long maxWaitUs = 200;      ///< micro-batch linger after first request
  std::size_t queueCapacity = 1024;  ///< admission-control bound (>= 1)
  long long requestTimeoutUs = 0;    ///< per-request deadline; 0 = none
  /// Fault-injection hook (tests/chaos only): stall each batch scoring
  /// pass by this much to make queue pressure deterministic.
  long long injectScoreDelayUs = 0;
  /// Optional trace recorder: each worker gets a lane (pid kTracePid) and
  /// emits one Cat::Serve span per scored batch, timed relative to engine
  /// construction. Must outlive the engine.
  obs::TraceRecorder* trace = nullptr;
};

/// Lane pid of serve workers in a Chrome trace: keeps the serving timeline
/// visually separate from training ranks (which use their rank as pid).
inline constexpr int kServeTracePid = 1000;

enum class ServeCode : std::uint8_t {
  Ok = 0,       ///< scored; decision/label are valid
  Shed = 1,     ///< rejected at admission: queue at capacity
  Timeout = 2,  ///< admitted but the per-request deadline passed
  Stopped = 3,  ///< rejected: engine is draining or drained
};

const char* serveCodeName(ServeCode code);

struct ServeReply {
  ServeCode code = ServeCode::Stopped;
  double decision = 0.0;       ///< valid when code == Ok
  std::int8_t label = 0;       ///< sign of decision when code == Ok
  double latencySeconds = 0.0; ///< submit-to-reply (0 for Shed/Stopped)
  std::size_t batchRows = 0;   ///< rows in the micro-batch that scored it
};

class ServeEngine {
 public:
  /// Takes ownership of the compiled model; workers start immediately.
  ServeEngine(CompiledDistributedModel model, ServeConfig config);

  /// Drains (graceful) if the caller didn't.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  const ServeConfig& config() const { return config_; }
  const CompiledDistributedModel& model() const { return model_; }

  /// Admit one request. The future always resolves: with Ok once scored,
  /// immediately with Shed (queue full) or Stopped (draining). `features`
  /// must have model().cols() entries.
  std::future<ServeReply> submit(std::vector<float> features);

  /// Convenience synchronous scoring: submit + wait.
  ServeReply score(std::vector<float> features);

  /// Graceful shutdown: reject new submits, score everything queued, join
  /// the workers. Idempotent; safe to call from any thread.
  void drain();

  /// Consistent snapshot of counters, latency percentiles and the
  /// batch-size distribution.
  ServeStats stats() const;

  /// stats().toJson() — the JSON export of the snapshot.
  std::string statsJson() const { return stats().toJson(); }

 private:
  struct Request {
    std::vector<float> features;
    std::promise<ServeReply> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void workerLoop(obs::Lane* lane);
  void scoreBatch(std::vector<Request>& batch, BatchScratch& scratch,
                  obs::Lane* lane);

  CompiledDistributedModel model_;
  ServeConfig config_;
  BoundedQueue<Request> queue_;
  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex statsMutex_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t timedOut_ = 0;
  std::uint64_t rejectedStopped_ = 0;
  std::uint64_t batches_ = 0;
  Log2Histogram latencyUs_;
  Log2Histogram batchRows_;
  double drainedElapsed_ = -1.0;  ///< elapsed seconds frozen at drain

  std::mutex lifecycleMutex_;
  bool drained_ = false;
};

}  // namespace casvm::serve
