#pragma once

/// \file engine.hpp
/// The serving runtime: a worker thread pool pulling from a bounded MPMC
/// request queue with micro-batching, admission control, zero-downtime
/// model hot-swap and overload protection.
///
/// Requests are single dense feature vectors. submit() either admits the
/// request (future resolves once a worker scores it) or rejects it
/// immediately with an explicit result code — requests are never dropped
/// silently. Admission checks, in order: feature width (BadRequest),
/// deadline already expired (Timeout, without touching the queue),
/// priority shed (Shed — low-priority requests only see a fraction of the
/// queue, and are shed outright while the engine is Degraded), queue
/// capacity (Shed) and drain state (Stopped).
///
/// Workers collect micro-batches: a batch flushes when it reaches
/// `batchSize` rows or `maxWaitUs` microseconds after its first request,
/// whichever comes first. Requests whose deadline passed while queued are
/// resolved Timeout at pop, before they occupy a batch slot or burn
/// scoring FLOPs. Each batch pins the current ModelPack once at scoring
/// start and finishes on it even if publish() installs a new model
/// mid-batch; see model_slot.hpp for the hot-swap protocol and health.hpp
/// for the brownout/circuit-breaker state machines.
///
/// Scored decisions are bitwise-identical to the scalar predict path of
/// whichever model generation scored the batch — the compiled model's
/// contract (see compiled_model.hpp) carries through the engine
/// unchanged, and every reply reports its generation.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "casvm/serve/compiled_ensemble.hpp"
#include "casvm/serve/health.hpp"
#include "casvm/serve/model_slot.hpp"
#include "casvm/serve/queue.hpp"
#include "casvm/serve/stats.hpp"

namespace casvm::obs {
class Lane;
class TraceRecorder;
}

namespace casvm::serve {

struct ServeConfig {
  int workers = 2;                ///< scoring threads (>= 1)
  std::size_t batchSize = 32;     ///< micro-batch flush threshold (>= 1)
  long long maxWaitUs = 200;      ///< micro-batch linger after first request
  std::size_t queueCapacity = 1024;  ///< admission-control bound (>= 1)
  long long requestTimeoutUs = 0;    ///< per-request deadline; 0 = none
  /// Fraction of queueCapacity visible to low-priority submits: the
  /// shed-low-first watermark. High-priority requests always see the full
  /// capacity.
  double lowPriorityAdmitFraction = 0.5;
  BrownoutConfig brownout;  ///< queue-depth linger shedding (see health.hpp)
  BreakerConfig breaker;    ///< Degraded-state circuit breaker
  /// Fault-injection hook (tests/chaos only): stall each batch scoring
  /// pass by this much to make queue pressure deterministic.
  long long injectScoreDelayUs = 0;
  /// Optional trace recorder: each worker gets a lane (pid kTracePid) and
  /// emits one Cat::Serve span per scored batch, timed relative to engine
  /// construction; a final `serve health` lane carries one span per
  /// health state. Must outlive the engine.
  obs::TraceRecorder* trace = nullptr;
};

/// Lane pid of serve workers in a Chrome trace: keeps the serving timeline
/// visually separate from training ranks (which use their rank as pid).
inline constexpr int kServeTracePid = 1000;

enum class ServeCode : std::uint8_t {
  Ok = 0,       ///< scored; decision/label are valid
  Shed = 1,     ///< rejected at admission: queue at capacity / overload
  Timeout = 2,  ///< deadline passed before scoring (at submit or in queue)
  Stopped = 3,  ///< rejected: engine is draining or drained
  BadRequest = 4,  ///< rejected: feature width does not match the model
};

const char* serveCodeName(ServeCode code);

/// Request priority class. Low-priority requests are shed first under
/// load: they only see `lowPriorityAdmitFraction` of the queue and are
/// rejected outright while the circuit breaker holds the engine Degraded.
enum class Priority : std::uint8_t { High = 0, Low = 1 };

/// Per-submit knobs; default-constructed it matches the old submit().
struct SubmitOptions {
  Priority priority = Priority::High;
  /// Relative deadline in microseconds from submit; -1 uses the engine's
  /// `requestTimeoutUs`, 0 means no deadline.
  long long deadlineUs = -1;
  /// Absolute deadline (overrides deadlineUs when set). A deadline
  /// already in the past is rejected at admission with Timeout before the
  /// request touches the queue.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

struct ServeReply {
  ServeCode code = ServeCode::Stopped;
  double decision = 0.0;       ///< valid when code == Ok
  std::int8_t label = 0;       ///< sign of decision when code == Ok
  double latencySeconds = 0.0; ///< submit-to-reply (0 for Shed/Stopped)
  std::size_t batchRows = 0;   ///< rows in the micro-batch that scored it
  std::uint64_t modelGeneration = 0;  ///< model that scored it (Ok only)
};

class ServeEngine {
 public:
  /// Takes ownership of the compiled model; workers start immediately.
  ServeEngine(CompiledDistributedModel model, ServeConfig config);

  /// Drains (graceful) if the caller didn't.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  const ServeConfig& config() const { return config_; }

  /// Pin of the model generation currently serving. Holding the returned
  /// pack keeps it alive across publishes; the reference returned by
  /// `pack->model` is valid for the pin's lifetime only.
  std::shared_ptr<const ModelPack> currentModel() const {
    return slot_.acquire();
  }
  std::uint64_t modelGeneration() const { return slot_.generation(); }

  /// Zero-downtime hot-swap: install `model` as the new serving pack and
  /// return its generation. Takes effect between micro-batches —
  /// in-flight batches finish on the pack they started with, and the
  /// retired pack is destroyed once its last batch drains. The feature
  /// width must match the engine's (see ModelSlot::publish); no request
  /// is ever dropped by a swap.
  std::uint64_t publish(CompiledDistributedModel model);

  /// Admit one request. The future always resolves with exactly one
  /// explicit code: Ok once scored, or immediately with BadRequest (wrong
  /// feature width), Timeout (deadline already expired), Shed (queue full
  /// or priority shed) or Stopped (draining).
  std::future<ServeReply> submit(std::vector<float> features,
                                 SubmitOptions options = {});

  /// Convenience synchronous scoring: submit + wait.
  ServeReply score(std::vector<float> features, SubmitOptions options = {});

  /// Graceful shutdown: reject new submits, score everything queued, join
  /// the workers. Idempotent; safe to call from any thread. Transitions
  /// health Draining -> Drained.
  void drain();

  /// Current health state (see health.hpp for the lattice).
  Health health() const;

  /// Every health transition so far, timed in seconds since start.
  std::vector<HealthTransition> healthTransitions() const;

  /// Consistent snapshot of counters, latency percentiles, batch-size
  /// distribution, hot-swap generation and health.
  ServeStats stats() const;

  /// stats().toJson() — the JSON export of the snapshot.
  std::string statsJson() const { return stats().toJson(); }

 private:
  struct Request {
    std::vector<float> features;
    std::promise<ServeReply> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  ///< max() = none
    Priority priority = Priority::High;
  };

  void workerLoop(obs::Lane* lane);
  void scoreBatch(std::vector<Request>& batch, BatchScratch& scratch,
                  obs::Lane* lane, bool brownout);
  /// Resolve a request that expired before scoring; counted as
  /// expired-in-queue.
  void expireRequest(Request& req, std::chrono::steady_clock::time_point now);
  /// Feed one admission/completion outcome to the breaker and apply the
  /// resulting health flip, if any.
  void feedBreaker(bool shedOutcome, double latencyUs);
  /// Re-evaluate brownout from the current queue depth; returns whether
  /// brownout is engaged for the batch about to be collected.
  bool updateBrownout();
  /// Record a health transition (no-op once Draining/Drained, except the
  /// Draining -> Drained step itself).
  void transitionHealth(Health to);
  /// Write the health timeline as spans into the trace lane (post-join).
  void flushHealthLane();

  ModelSlot slot_;
  ServeConfig config_;
  BoundedQueue<Request> queue_;
  std::size_t lowPriorityCap_ = 0;
  std::size_t brownoutEngageDepth_ = 0;
  std::size_t brownoutRecoverDepth_ = 0;
  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point start_;
  obs::Lane* healthLane_ = nullptr;

  mutable std::mutex statsMutex_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t timedOut_ = 0;
  std::uint64_t rejectedStopped_ = 0;
  std::uint64_t badRequests_ = 0;
  std::uint64_t expiredAtAdmission_ = 0;
  std::uint64_t expiredInQueue_ = 0;
  std::uint64_t shedLow_ = 0;
  std::uint64_t brownoutEngaged_ = 0;
  std::uint64_t brownoutBatches_ = 0;
  std::uint64_t batches_ = 0;
  Log2Histogram latencyUs_;
  Log2Histogram batchRows_;
  CircuitBreaker breaker_;
  double drainedElapsed_ = -1.0;  ///< elapsed seconds frozen at drain

  std::atomic<bool> brownout_{false};
  std::atomic<bool> degraded_{false};  ///< mirrors breaker_.open()

  // Lock order: statsMutex_ before healthMutex_ (stats() nests them);
  // never the reverse.
  mutable std::mutex healthMutex_;
  Health health_ = Health::Starting;
  std::vector<HealthTransition> transitions_;

  std::mutex lifecycleMutex_;
  bool drained_ = false;
};

}  // namespace casvm::serve
