#pragma once

/// \file health.hpp
/// Serving-tier health lifecycle and overload protection policies.
///
/// The engine's externally visible health walks a one-way-ish lattice:
///
///   Starting -> Ready <-> Degraded -> Draining -> Drained
///
/// Ready/Degraded flips are driven by the circuit breaker; once drain()
/// begins, the Draining/Drained tail is final — a breaker recovery can
/// never resurrect a draining engine. Every transition is timestamped and
/// exported both through ServeStats and, when tracing is attached, as a
/// `serve health` lane of state spans in the Chrome trace.
///
/// Two policies live here because they are pure state machines with no
/// engine dependencies, unit-testable without threads:
///
///  - CircuitBreaker: sliding request-count windows over admission sheds
///    and completion latencies. `tripWindows` consecutive breaching
///    windows (shed rate or p99 latency over threshold) open the breaker
///    (engine goes Degraded and sheds all low-priority work);
///    `recoverWindows` consecutive healthy windows close it again — the
///    asymmetric streaks are the hysteresis that keeps the state from
///    flapping at the threshold.
///  - BrownoutConfig: the queue-depth watermarks (with the same
///    engage-high / recover-low hysteresis shape) at which workers stop
///    lingering for full micro-batches and flush what they have.

#include <cstdint>

#include "casvm/serve/stats.hpp"

namespace casvm::serve {

enum class Health : std::uint8_t {
  Starting = 0,  ///< constructor running, workers not yet accepting
  Ready = 1,     ///< serving normally
  Degraded = 2,  ///< circuit breaker open: low-priority work is shed
  Draining = 3,  ///< drain() started: rejecting submits, scoring backlog
  Drained = 4,   ///< workers joined; terminal
};

const char* healthName(Health health);

/// One recorded health-state change, timed in seconds since engine start.
struct HealthTransition {
  Health from = Health::Starting;
  Health to = Health::Starting;
  double atSeconds = 0.0;
};

/// Brownout watermarks, as fractions of the queue capacity. When the
/// depth a worker observes at batch start reaches `engageFraction *
/// capacity`, workers switch to the brownout linger/batch knobs (flush
/// immediately by default) until the depth falls back to
/// `recoverFraction * capacity`. Set engageFraction > 1 to disable.
struct BrownoutConfig {
  double engageFraction = 0.75;
  double recoverFraction = 0.25;
  long long maxWaitUs = 0;    ///< micro-batch linger while browned out
  std::size_t batchSize = 0;  ///< flush threshold while browned out; 0 = keep
};

/// Circuit-breaker thresholds. A window closes after `windowRequests`
/// outcomes (admission sheds + scored completions); it breaches when the
/// window's shed fraction exceeds `maxShedRate` or its p99 latency
/// exceeds `maxP99Us` (0 disables the latency trigger). Set
/// windowRequests = 0 to disable the breaker entirely.
struct BreakerConfig {
  std::uint64_t windowRequests = 256;
  double maxShedRate = 0.5;
  double maxP99Us = 0.0;
  int tripWindows = 2;
  int recoverWindows = 4;
};

/// Deterministic sliding-window breaker; not thread-safe (the engine
/// feeds it under its stats mutex).
class CircuitBreaker {
 public:
  enum class Action : std::uint8_t { None = 0, Trip = 1, Recover = 2 };

  explicit CircuitBreaker(BreakerConfig config);

  /// Record one request outcome: an admission shed (latency ignored) or a
  /// scored completion with its latency in microseconds. Returns Trip or
  /// Recover on the outcome that flips the breaker, None otherwise.
  Action onOutcome(bool shed, double latencyUs);

  bool open() const { return open_; }
  std::uint64_t trips() const { return trips_; }
  std::uint64_t recoveries() const { return recoveries_; }

 private:
  Action evaluateWindow();

  BreakerConfig config_;
  bool open_ = false;
  std::uint64_t trips_ = 0;
  std::uint64_t recoveries_ = 0;
  int breachStreak_ = 0;
  int healthyStreak_ = 0;
  std::uint64_t windowTotal_ = 0;
  std::uint64_t windowShed_ = 0;
  Log2Histogram windowLatencyUs_;
};

}  // namespace casvm::serve
