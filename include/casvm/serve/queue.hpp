#pragma once

/// \file queue.hpp
/// Bounded MPMC request queue for the serving runtime.
///
/// Admission control happens at push: a full queue rejects the push
/// (the caller sheds the request with an explicit result code — nothing is
/// ever dropped silently). close() starts a graceful drain: pushes are
/// rejected with Closed, but pops keep returning queued items until the
/// queue is empty, then report Closed so consumers can exit.
///
/// Mutex + condition variable; simple, fair enough at serving batch sizes,
/// and clean under ThreadSanitizer.

#include <algorithm>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace casvm::serve {

enum class PushResult : std::uint8_t { Ok = 0, Full = 1, Closed = 2 };
enum class PopResult : std::uint8_t { Item = 0, Timeout = 1, Closed = 2 };

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking admission: Full when at capacity, Closed after close().
  /// `value` is consumed only on Ok. `capLimit` caps the depth this push
  /// may fill to below the queue's capacity — how low-priority requests
  /// get shed first while high-priority ones still see the full queue.
  PushResult tryPush(T&& value, std::size_t capLimit = SIZE_MAX) {
    const std::size_t cap = std::min(capacity_, capLimit);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::Closed;
      if (items_.size() >= cap) return PushResult::Full;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return PushResult::Ok;
  }

  /// Pop one item. Blocks until an item arrives, `deadline` passes
  /// (Timeout), or the queue is closed *and* empty (Closed). With no
  /// deadline, blocks until Item or Closed.
  PopResult waitPop(
      T& out,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (!items_.empty()) {
        out = std::move(items_.front());
        items_.pop_front();
        return PopResult::Item;
      }
      if (closed_) return PopResult::Closed;
      if (deadline.has_value()) {
        if (cv_.wait_until(lock, *deadline) == std::cv_status::timeout &&
            items_.empty()) {
          return closed_ ? PopResult::Closed : PopResult::Timeout;
        }
      } else {
        cv_.wait(lock);
      }
    }
  }

  /// Non-blocking pop; false when empty.
  bool tryPop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Reject new pushes; wake all waiters. Queued items remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace casvm::serve
