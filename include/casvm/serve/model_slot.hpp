#pragma once

/// \file model_slot.hpp
/// RCU-style holder for the serving engine's compiled model, enabling
/// zero-downtime hot-swap.
///
/// The slot owns the current ModelPack behind a shared_ptr. publish()
/// installs a new pack atomically (one mutex-guarded pointer swap — the
/// mutex is never held across scoring); workers acquire() a pin on the
/// current pack once per micro-batch and score the whole batch through
/// it, so a batch always finishes on the pack it started with. A retired
/// generation is destroyed by the last pin going out of scope — i.e. only
/// after the final in-flight batch that started on it has drained; no
/// epoch bookkeeping beyond the shared_ptr refcount is needed.
///
/// Generations are numbered from 1 (the pack the slot was constructed
/// with); every published pack carries its generation so replies can
/// report exactly which model scored them.

#include <cstdint>
#include <memory>
#include <mutex>

#include "casvm/serve/compiled_ensemble.hpp"

namespace casvm::serve {

/// One published model generation, pinned per micro-batch via shared_ptr.
struct ModelPack {
  CompiledDistributedModel model;
  std::uint64_t generation = 0;
};

class ModelSlot {
 public:
  explicit ModelSlot(CompiledDistributedModel initial);

  ModelSlot(const ModelSlot&) = delete;
  ModelSlot& operator=(const ModelSlot&) = delete;

  /// Install `model` as the new current pack and return its generation.
  /// The feature width must match the slot's (a width-0 pack — no support
  /// vectors anywhere — is compatible with anything), so admission-time
  /// width validation stays race-free across swaps. Throws casvm::Error
  /// on a width mismatch; the current pack is left untouched.
  std::uint64_t publish(CompiledDistributedModel model);

  /// Pin the current pack. The returned pointer (never null) stays valid
  /// for as long as the caller holds it, regardless of later publishes.
  std::shared_ptr<const ModelPack> acquire() const;

  /// Generation of the current pack (1 = the construction-time pack).
  std::uint64_t generation() const;

  /// publish() calls since construction.
  std::uint64_t swaps() const;

  /// Stable feature width used for admission validation: the width of the
  /// first non-empty pack ever installed (0 until one exists).
  std::size_t cols() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const ModelPack> current_;
  std::uint64_t swaps_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace casvm::serve
