#pragma once

/// \file stats.hpp
/// Built-in observability for the serving runtime: power-of-two bucketed
/// histograms (latency percentiles, batch-size distribution) and the
/// per-engine counter snapshot, exportable as a struct and as JSON.

#include <array>
#include <cstdint>
#include <string>

namespace casvm::serve {

/// Histogram over positive values with power-of-two buckets: bucket b
/// holds values in [2^(b-1), 2^b) (bucket 0 holds values < 1). Quantiles
/// come back as the geometric midpoint of the selected bucket, so they
/// carry at most a 2x bucket-resolution error — plenty for p50/p95/p99
/// reporting at a fixed 384 bytes per histogram.
class Log2Histogram {
 public:
  static constexpr int kBuckets = 48;

  void record(double value);

  std::uint64_t count() const { return total_; }
  double sum() const { return sum_; }
  double mean() const { return total_ == 0 ? 0.0 : sum_ / double(total_); }
  double max() const { return max_; }

  /// Value at quantile q in [0, 1]; 0 when empty. Bucket midpoints are
  /// clamped to max(), so a quantile never exceeds a recorded value.
  double quantile(double q) const;

  void merge(const Log2Histogram& other);

 private:
  static int bucketOf(double value);

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Counter and latency snapshot of one ServeEngine. `latency*` fields are
/// seconds measured from admission (submit) to reply.
struct ServeStats {
  std::uint64_t submitted = 0;     ///< accepted into the queue
  std::uint64_t completed = 0;     ///< scored and replied Ok
  std::uint64_t shed = 0;          ///< rejected at admission (queue full)
  std::uint64_t timedOut = 0;      ///< deadline passed before scoring
  std::uint64_t rejectedStopped = 0;  ///< submitted after drain started
  std::uint64_t badRequests = 0;   ///< rejected: feature width mismatch
  std::uint64_t batches = 0;       ///< micro-batches scored
  // Deadline breakdown: timedOut == expiredAtAdmission + expiredInQueue.
  std::uint64_t expiredAtAdmission = 0;  ///< deadline already past at submit
  std::uint64_t expiredInQueue = 0;  ///< expired while queued; never scored
  // Overload protection:
  std::uint64_t shedLow = 0;  ///< low-priority sheds (subset of `shed`)
  std::uint64_t brownoutEngaged = 0;  ///< times brownout mode engaged
  std::uint64_t brownoutBatches = 0;  ///< batches flushed while browned out
  std::uint64_t breakerTrips = 0;       ///< Ready -> Degraded flips
  std::uint64_t breakerRecoveries = 0;  ///< Degraded -> Ready flips
  // Hot-swap:
  std::uint64_t modelGeneration = 0;  ///< generation currently serving
  std::uint64_t modelSwaps = 0;       ///< publish() calls so far
  std::string health = "starting";    ///< healthName() of the engine state
  double elapsedSeconds = 0.0;     ///< engine start to now (or drain)
  double qps = 0.0;                ///< completed / elapsedSeconds
  double latencyP50 = 0.0;
  double latencyP95 = 0.0;
  double latencyP99 = 0.0;
  double latencyMax = 0.0;
  double meanBatchRows = 0.0;
  double batchRowsP50 = 0.0;
  double batchRowsMax = 0.0;

  /// One-line JSON object with every field above.
  std::string toJson() const;
};

}  // namespace casvm::serve
