#pragma once

/// \file compiled_ensemble.hpp
/// Compiled forms of the ensemble models: DistributedModel (batch
/// nearest-center routing, paper Algorithm 6's prediction process) and
/// MulticlassModel (one-vs-one vote over a shared, deduplicated SV pool so
/// kernel evaluations are computed once per query instead of once per
/// pair that references the same support vector).
///
/// Same bitwise contract as CompiledModel: decisions match
/// DistributedModel::decisionFor, and multiclass predictions match
/// MulticlassModel::predictFor, including routing and vote tie-breaks.

#include "casvm/core/distributed_model.hpp"
#include "casvm/core/multiclass.hpp"
#include "casvm/serve/compiled_model.hpp"

namespace casvm::serve {

/// Compile a binary model (tiles/CSR + self-norms built once).
CompiledModel compile(const solver::Model& model);

/// A DistributedModel compiled for batch scoring: queries are routed to
/// their nearest data center in a batch, grouped per sub-model, and each
/// group is scored through that sub-model's compiled SV pack.
class CompiledDistributedModel {
 public:
  CompiledDistributedModel() = default;

  static CompiledDistributedModel compile(const core::DistributedModel& model);

  bool isRouted() const { return !centers_.empty(); }
  std::size_t numModels() const { return models_.size(); }
  const CompiledModel& model(std::size_t i) const { return models_[i]; }
  std::size_t totalSupportVectors() const;
  /// Feature count of the first non-empty sub-model (0 if all empty).
  std::size_t cols() const;
  /// Memory held by all packed SV sets in bytes.
  std::size_t packedBytes() const;

  /// Sub-model index that scores row i (bitwise the same routing decision
  /// as DistributedModel::route).
  std::size_t route(const data::Dataset& ds, std::size_t i) const;

  /// out[j] = decision value for row rows[j]; bitwise-identical to
  /// DistributedModel::decisionFor(ds, rows[j]).
  void decisionBatch(const data::Dataset& ds, std::span<const std::size_t> rows,
                     std::span<double> out, BatchScratch& scratch) const;

  /// out[i] = decision value for every row of `ds`.
  void decisionAll(const data::Dataset& ds, std::span<double> out,
                   BatchScratch& scratch) const;

  /// Decision for a raw dense feature vector (engine path); equals
  /// scoring a one-row dense Dataset holding `x`.
  double decision(std::span<const float> x, BatchScratch& scratch) const;

  /// Fraction of `testSet` classified correctly via the batch path.
  double accuracy(const data::Dataset& testSet, BatchScratch& scratch) const;

 private:
  std::vector<CompiledModel> models_;
  std::vector<std::vector<float>> centers_;  // empty for single models
  std::vector<double> centerSelfDots_;
};

/// A MulticlassModel compiled for batch one-vs-one voting.
///
/// When every pair holds a single (non-routed) sub-model with identical
/// kernel parameters, storage and feature count — the standard one-vs-one
/// decomposition — the support vectors of all pairs are deduplicated into
/// one shared pool: each query computes one kernel row over the pool and
/// every pair reduces its decision from that row, so an SV shared by
/// several pairs is evaluated once per query instead of once per pair.
/// Otherwise scoring falls back to per-pair compiled models (still batched
/// and tiled, just without cross-pair sharing).
class CompiledMulticlassModel {
 public:
  CompiledMulticlassModel() = default;

  static CompiledMulticlassModel compile(const core::MulticlassModel& model);

  const std::vector<int>& classes() const { return classes_; }
  std::size_t numPairs() const { return sharedPool_ ? pairRefs_.size()
                                                    : fallback_.size(); }
  /// True when the shared deduplicated SV pool is in use.
  bool sharesPool() const { return sharedPool_; }
  /// Unique SVs in the pool (0 on the fallback path).
  std::size_t poolSize() const { return pool_.size(); }
  /// Total SV references across all pairs (>= poolSize when shared).
  std::size_t pairSvTotal() const;

  /// out[j] = predicted class of row rows[j]; identical (vote and
  /// tie-break included) to MulticlassModel::predictFor.
  void predictBatch(const data::Dataset& ds, std::span<const std::size_t> rows,
                    std::span<int> out, BatchScratch& scratch) const;

  /// out[i] = predicted class for every row of `ds`.
  void predictAll(const data::Dataset& ds, std::span<int> out,
                  BatchScratch& scratch) const;

  /// Fraction of rows whose predicted class matches `labels`.
  double accuracy(const data::Dataset& ds, const std::vector<int>& labels,
                  BatchScratch& scratch) const;

 private:
  int voteFrom(std::span<const double> pairDecisions) const;

  std::vector<int> classes_;
  bool sharedPool_ = false;

  // Shared-pool path: one SV pool + per-pair references into it.
  struct PairRef {
    int positiveClass = 0;
    int negativeClass = 0;
    double bias = 0.0;
    std::vector<std::uint32_t> poolIdx;  ///< pool slot per pair SV, in order
    std::vector<double> alphaY;
  };
  kernel::KernelParams params_{};
  CompiledSvSet pool_;
  std::vector<PairRef> pairRefs_;

  // Fallback path: per-pair compiled distributed models.
  struct PairModel {
    int positiveClass = 0;
    int negativeClass = 0;
    CompiledDistributedModel model;
  };
  std::vector<PairModel> fallback_;
};

}  // namespace casvm::serve
