#pragma once

/// \file isoefficiency.hpp
/// Isoefficiency analysis (the paper's §III-A and Table IV).
///
/// The isoefficiency function W(P) is the problem-size growth required to
/// hold parallel efficiency E fixed as P grows: W = K * To(W, P) with
/// K = E/(1-E) and To = P*Tp - W the total parallel overhead (Grama §5.4.2).
/// A method that needs W = Omega(P^3) can productively use only the cube
/// root of the processors a W = Omega(P) method can.

#include <string>

#include "casvm/net/cost.hpp"

namespace casvm::perf {

/// Methods with a closed-form overhead model.
enum class ScalingMethod {
  MatVec1D,  ///< reference kernel, W = Omega(P^2)
  MatVec2D,  ///< reference kernel, W = Omega(P)
  DisSmo,    ///< eqn. (10): W = Omega(P^3)
  Cascade,   ///< Table IV: W = Omega(P^3) (communication bound)
  DcSvm,     ///< Table IV: W = Omega(P^3)
  CaSvm,     ///< removed communication: W = Omega(P)
};

/// Asymptotic communication bound as printed in Table IV.
std::string isoefficiencyFormula(ScalingMethod method);

/// Parameters of the overhead models. ts/tw are in units of flop-time
/// (the paper normalizes tc = 1); n is the feature count.
struct IsoParams {
  double ts = 1000.0;  ///< message startup, flops-equivalent (t_s)
  double tw = 10.0;    ///< per-word transfer, flops-equivalent (t_w)
  double n = 100.0;    ///< features per sample
  double efficiency = 0.5;  ///< target efficiency E
};

/// Minimum problem size W (in flops, = 2mn for SMO-like kernels) needed to
/// sustain `params.efficiency` on P processors, from the overhead model.
/// Solved in closed form where the overhead is affine in W, otherwise by
/// bisection on W = K*To(W, P).
double isoefficiencyW(ScalingMethod method, int P, const IsoParams& params);

}  // namespace casvm::perf
