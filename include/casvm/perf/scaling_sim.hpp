#pragma once

/// \file scaling_sim.hpp
/// Calibrated analytic scaling simulator for the paper's large-P studies
/// (Tables XIX-XXII: strong and weak scaling on 96-1536 processors).
///
/// A 1536-rank execution cannot run physically in this repository's
/// container, so — per the substitution policy in DESIGN.md — large-P
/// times are *modeled*: the per-iteration cost, iteration growth rate and
/// support-vector fraction are calibrated from real solves of this
/// library's SMO on this machine, and communication is charged with the
/// same alpha-beta CostModel the runtime uses. The model reproduces the
/// phenomena the paper reports:
///   - CA-SVM strong scaling is superlinear (time ~ (m/P)^2, because both
///     the iteration count and the per-iteration cost shrink with m/P);
///   - CA-SVM weak scaling is flat (per-node work is constant and there is
///     no communication to grow with P);
///   - DC-SVM weak scaling collapses ~P^2 (its final layer retrains on all
///     m = m_node * P samples);
///   - Dis-SMO weak scaling degrades ~P (iterations grow with m while the
///     per-iteration local work stays constant).

#include <cstdint>

#include "casvm/core/method.hpp"
#include "casvm/data/dataset.hpp"
#include "casvm/net/cost.hpp"
#include "casvm/solver/smo.hpp"

namespace casvm::perf {

/// Machine/workload constants measured from real solves.
struct ScalingCalibration {
  double itersPerSample = 0.3;    ///< c_i: SMO iterations ~ c_i * m
  double secPerIterRow = 1e-7;    ///< seconds per iteration per local row
  double svFraction = 0.3;        ///< support vectors ~ svFraction * m
  double warmStartFactor = 0.5;   ///< iteration discount on warm-started layers
  double kmeansLoops = 10.0;      ///< typical K-means convergence loops
  double cpImbalance = 2.0;       ///< largest K-means part / (m/P) at P=8
  /// Exponent g of the imbalance growth law lambda(P) ~ cpImbalance *
  /// (P/8)^g, fitted from K-means runs at two k values. Real datasets have
  /// a bounded number of natural clusters, so as P grows past it the
  /// largest K-means part stops shrinking like m/P — this is why the
  /// paper's CP-SVM weak-scaling efficiency collapses to 6.8% while the
  /// balanced CA-SVM variants stay near 100%.
  double cpImbalanceGrowth = 0.5;
  long long features = 100;       ///< n
  net::CostModel cost;            ///< alpha-beta interconnect model
};

/// Fit the calibration by solving real subproblems of `ds` at the given
/// sizes with this library's SmoSolver, plus one K-means run for the
/// imbalance factor. Deterministic in (ds, sizes, seed).
ScalingCalibration calibrate(const data::Dataset& ds,
                             const solver::SolverOptions& options,
                             const std::vector<std::size_t>& sizes,
                             std::uint64_t seed = 42);

/// Modeled training time, split into compute and communication seconds.
struct ModeledTime {
  double compute = 0.0;
  double comm = 0.0;
  double total() const { return compute + comm; }
};

/// Modeled time to train m samples on P processes with `method`.
ModeledTime modeledTrainTime(core::Method method,
                             const ScalingCalibration& cal, long long m,
                             int P);

}  // namespace casvm::perf
