#pragma once

/// \file comm_model.hpp
/// Closed-form communication-volume models (the paper's Table X). Given
/// the dataset and run statistics (m samples, n features, s support
/// vectors, I iterations, k K-means loops, p processes), each formula
/// predicts the total bytes an algorithm moves; the paper validated them
/// within ~5-20% of measured volume. bench_table10 compares them against
/// the byte-exact TrafficMatrix of a real run of this library.

#include <cstddef>

#include "casvm/core/method.hpp"

namespace casvm::perf {

/// Inputs to the Table X formulas.
struct CommModelParams {
  long long m = 0;  ///< training samples
  long long n = 0;  ///< features per sample
  long long s = 0;  ///< support vectors of the full problem
  long long I = 0;  ///< SMO iterations (Dis-SMO; PBM pair corrections)
  long long k = 0;  ///< K-means loops
  int p = 1;        ///< processes
  long long r = 8;  ///< PBM outer rounds
  /// Average surviving active-set fraction once adaptive shrinking engages
  /// (DisSmoShrink): scales the elected-row broadcast volume, since the
  /// replicated cache absorbs the re-elections of the shrunken core.
  double sigma = 0.5;
  /// Nyström landmarks when the run used the low-rank backend (0 = exact).
  /// Only the Dis-SMO family pays extra: one allgatherv replicating the L
  /// landmark rows (n words each, plus self-dots) on all p ranks at
  /// startup — pL(n+2) words. The partitioned and tree methods build
  /// per-cluster factors from purely local rows, adding zero volume.
  long long L = 0;
};

/// Predicted total communication volume in bytes (4-byte words, as in the
/// paper's worked example). CA-SVM returns exactly 0.
double predictedCommBytes(core::Method method, const CommModelParams& params);

/// The formula as printed in Table X (for reporting).
const char* commFormula(core::Method method);

}  // namespace casvm::perf
