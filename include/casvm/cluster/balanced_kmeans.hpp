#pragma once

/// \file balanced_kmeans.hpp
/// Balanced K-means partitioning (the paper's Algorithm 5), the
/// partitioner behind BKM-CA.
///
/// Ordinary K-means is run first, then samples are migrated from
/// over-loaded centers to under-loaded ones — always moving the sample
/// farthest from its over-loaded center to the nearest center with spare
/// capacity — until every part holds ~m/P samples. The ratio-balanced
/// variant applies the same migration per class so each part also carries
/// the global positive/negative ratio (Tables VIII-IX).

#include <cstdint>

#include "casvm/cluster/kmeans.hpp"
#include "casvm/cluster/partition.hpp"
#include "casvm/net/comm.hpp"

namespace casvm::cluster {

struct BalancedKMeansOptions {
  int parts = 8;
  /// Also equalize the per-class counts across parts.
  bool ratioBalanced = false;
  /// Recompute centers as part means after rebalancing (optional per the
  /// paper).
  bool recomputeCenters = true;
  /// Underlying K-means loop controls.
  std::size_t maxKmeansLoops = 300;
  double kmeansChangeThreshold = 0.0;
  std::uint64_t seed = 42;
};

struct BalancedKMeansResult {
  Partition partition;
  std::size_t kmeansLoops = 0;  ///< loops the initial K-means took
  std::size_t moves = 0;        ///< samples migrated during rebalancing
};

/// Serial balanced K-means (Algorithm 5).
BalancedKMeansResult balancedKmeans(const data::Dataset& ds,
                                    const BalancedKMeansOptions& options);

/// Distributed variant: distributed K-means for the clustering phase, then
/// the same divide-and-conquer trick as parallel FCFS — each rank
/// rebalances its own block against per-rank quotas, then centers are
/// recomputed globally. Returns local assignment + global centers.
BalancedKMeansResult balancedKmeansDistributed(
    net::Comm& comm, const data::Dataset& local,
    const BalancedKMeansOptions& options);

}  // namespace casvm::cluster
