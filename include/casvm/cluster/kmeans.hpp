#pragma once

/// \file kmeans.hpp
/// Lloyd's K-means (the paper's Algorithm 2), serial and distributed.
///
/// K-means is the partitioning substep of DC-SVM, DC-Filter, CP-SVM and
/// BKM-CA: it groups samples by Euclidean proximity, which for the Gaussian
/// kernel means samples that actually interact (K(xi, xj) far from 0) land
/// in the same part (§IV-A). The distributed version mirrors a standard
/// MPI K-means: local assignment, allreduce of per-center sums and counts.

#include <cstdint>

#include "casvm/cluster/partition.hpp"
#include "casvm/net/comm.hpp"

namespace casvm::cluster {

struct KMeansOptions {
  int clusters = 8;
  std::size_t maxLoops = 300;
  /// Stop when the fraction of samples that changed assignment in a loop
  /// drops to or below this threshold (Algorithm 2's delta/m test).
  double changeThreshold = 0.0;
  /// Seed centers with k-means++ (D^2 sampling) instead of the paper's
  /// uniform random pick. Off by default for fidelity to Algorithm 2;
  /// available because random init can land in poor local optima.
  bool plusPlusInit = false;
  /// Independent Lloyd runs (serial kmeans only); the run with the lowest
  /// within-cluster sum of squares wins. 1 = single run, as in the paper.
  int restarts = 1;
  std::uint64_t seed = 42;
};

struct KMeansResult {
  Partition partition;
  std::size_t loops = 0;    ///< assignment loops executed (winning run)
  bool converged = false;   ///< threshold reached before maxLoops
  double sse = 0.0;         ///< within-cluster sum of squared distances
};

/// Serial Lloyd's K-means over the whole dataset.
KMeansResult kmeans(const data::Dataset& ds, const KMeansOptions& options);

/// Distributed K-means over an SPMD communicator. `local` is this rank's
/// block of the (conceptually concatenated) dataset. Initial centers are
/// sampled on rank 0 and broadcast; each loop does a local assignment pass
/// and one allreduce of center sums/counts plus one of the change count.
/// The returned partition covers only local rows; centers are global.
KMeansResult kmeansDistributed(net::Comm& comm, const data::Dataset& local,
                               const KMeansOptions& options);

}  // namespace casvm::cluster
