#pragma once

/// \file fcfs.hpp
/// First-Come-First-Served partitioning (the paper's Algorithms 3 and 4),
/// the partitioner behind FCFS-CA.
///
/// Each sample is assigned to its nearest *under-loaded* center; once a
/// center reaches the balanced size it stops accepting, so every part ends
/// up with ~m/P samples by construction. The ratio-balanced variant
/// (§IV-B1, Tables VII-IX) additionally enforces per-class quotas, because
/// the paper shows equal data volume alone does not equalize work: ranks
/// with more positive samples grow more support vectors and need more
/// iterations.

#include <cstdint>

#include "casvm/cluster/partition.hpp"
#include "casvm/net/comm.hpp"

namespace casvm::cluster {

struct FcfsOptions {
  int parts = 8;
  /// Enforce per-class (positive/negative) quotas, not just total size.
  bool ratioBalanced = false;
  /// Recompute centers as part means after assignment (Algorithm 3
  /// lines 15-21; the paper notes this is optional).
  bool recomputeCenters = true;
  std::uint64_t seed = 42;
};

/// Serial FCFS partitioning (Algorithm 3).
Partition fcfsPartition(const data::Dataset& ds, const FcfsOptions& options);

/// Parallel FCFS partitioning (Algorithm 4): every rank solves an
/// independent local FCFS over its block with per-rank quotas balanced/P,
/// then centers are recomputed globally with two allreduces. Returns the
/// local assignment and the global centers.
Partition fcfsPartitionDistributed(net::Comm& comm,
                                   const data::Dataset& local,
                                   const FcfsOptions& options);

}  // namespace casvm::cluster
