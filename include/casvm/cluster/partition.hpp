#pragma once

/// \file partition.hpp
/// Common partitioning types plus the Randomly-Averaging partitioner that
/// underlies RA-CA / CA-SVM (§IV-B3): deal samples evenly at random, then
/// define each part's "center" as the mean of its samples (eqn. 14) so the
/// prediction router can still pick the nearest part.

#include <cstdint>
#include <vector>

#include "casvm/data/dataset.hpp"

namespace casvm::cluster {

/// Assignment of every sample to one of `parts` groups, with one dense
/// center per group (the CT vectors of the paper's algorithms).
struct Partition {
  int parts = 0;
  std::vector<int> assign;                  ///< one entry per sample
  std::vector<std::vector<float>> centers;  ///< parts x n

  /// Samples per part.
  std::vector<std::size_t> sizes() const;

  /// Row indices per part, in input order.
  std::vector<std::vector<std::size_t>> groups() const;

  /// Positive-label samples per part (needs the dataset for labels).
  std::vector<std::size_t> positiveCounts(const data::Dataset& ds) const;

  /// Largest part size divided by the balanced size ceil(m/parts);
  /// 1.0 means perfectly balanced.
  double imbalance() const;

  /// Index of the center nearest to dense vector x (Euclidean).
  int nearestCenter(std::span<const float> x) const;

  /// Index of the center nearest to row i of ds.
  int nearestCenter(const data::Dataset& ds, std::size_t i) const;

  /// Validate internal consistency (sizes, ranges); throws on violation.
  void validate(std::size_t expectedSamples) const;
};

/// Compute per-part mean centers from an assignment (eqn. 14).
std::vector<std::vector<float>> computeCenters(const data::Dataset& ds,
                                               const std::vector<int>& assign,
                                               int parts);

/// Randomly-averaging partition: shuffle, deal evenly (sizes differ by at
/// most one), centers = per-part means. The partition used by RA-CA.
Partition randomPartition(const data::Dataset& ds, int parts,
                          std::uint64_t seed);

/// Deterministic block partition: rank r gets rows [r*m/P, (r+1)*m/P).
/// The partition used by Dis-SMO and Cascade (even split, no clustering).
Partition blockPartition(const data::Dataset& ds, int parts);

}  // namespace casvm::cluster
