#pragma once

/// \file io.hpp
/// LIBSVM-format readers and writers.
///
/// The paper's datasets (adult, epsilon, face, gisette, ijcnn, usps,
/// webspam) are distributed in LIBSVM format; the benches accept real
/// files through this reader when present, and otherwise fall back to the
/// synthetic stand-ins in registry.hpp.
///
/// Format: one sample per line, `<label> <index>:<value> ...` with 1-based,
/// strictly increasing indices. Labels: any value > 0 maps to +1, any value
/// <= 0 maps to -1 (covers the common {+1,-1} and {0,1} encodings).

#include <iosfwd>
#include <string>

#include "casvm/data/dataset.hpp"

namespace casvm::data {

/// Parse a LIBSVM stream into a sparse dataset.
/// `cols` forces the feature count (0 = infer from the max index seen).
Dataset readLibsvm(std::istream& in, std::size_t cols = 0);

/// Parse a LIBSVM file; throws casvm::Error if the file cannot be opened.
Dataset readLibsvmFile(const std::string& path, std::size_t cols = 0);

/// Write a dataset (dense or sparse) in LIBSVM format; zeros are skipped.
void writeLibsvm(const Dataset& ds, std::ostream& out);

/// Write to a file; throws casvm::Error on failure.
void writeLibsvmFile(const Dataset& ds, const std::string& path);

}  // namespace casvm::data
