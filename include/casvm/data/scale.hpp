#pragma once

/// \file scale.hpp
/// Feature scaling, the svm-scale step of the classic LIBSVM workflow.
///
/// Gaussian-kernel SVMs are sensitive to feature ranges: one wide feature
/// dominates every distance and the rest stop mattering. Scaling must be
/// fit on the training split only and then applied unchanged to test data
/// (fitting on test data leaks), which is why the parameters are a
/// first-class, serializable object here.

#include <string>
#include <vector>

#include "casvm/data/dataset.hpp"

namespace casvm::data {

enum class ScalingKind : std::uint8_t {
  /// Map each feature's [min, max] to [lower, upper] (svm-scale default).
  MinMax = 0,
  /// Map each feature to zero mean, unit variance.
  Standard = 1,
};

/// Fitted per-feature scaling parameters.
class Scaler {
 public:
  Scaler() = default;

  /// Fit on a training split. For MinMax, `lower`/`upper` give the target
  /// range (defaults [-1, 1], like svm-scale).
  static Scaler fit(const Dataset& train, ScalingKind kind,
                    double lower = -1.0, double upper = 1.0);

  ScalingKind kind() const { return kind_; }
  std::size_t features() const { return offset_.size(); }

  /// Apply to any dataset with the same feature count. Sparse datasets
  /// stay sparse for Standard=false only if a zero maps to zero; MinMax
  /// with a range not containing 0 would densify, so sparse inputs are
  /// scaled entry-wise (zeros stay zero) — the svm-scale convention for
  /// sparse data.
  Dataset apply(const Dataset& ds) const;

  /// Scale a single dense feature vector in place.
  void applyTo(std::span<float> row) const;

  /// Serialization (text format, one line per feature).
  void save(const std::string& path) const;
  static Scaler load(const std::string& path);

 private:
  // x' = (x - offset) * factor  (+ shift for MinMax target lower bound)
  ScalingKind kind_ = ScalingKind::MinMax;
  std::vector<double> offset_;
  std::vector<double> factor_;
  double targetLower_ = -1.0;
};

}  // namespace casvm::data
