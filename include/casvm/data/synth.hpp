#pragma once

/// \file synth.hpp
/// Synthetic dataset generators.
///
/// The paper's phenomena are driven by three structural properties of its
/// datasets, all of which these generators control explicitly:
///   1. cluster structure (K-means-partitionable geometry — the reason
///      CP-SVM/DC-SVM partition by K-means at all);
///   2. label/cluster correlation (the reason per-cluster local models
///      classify nearly as well as one global model);
///   3. class imbalance (the paper's Tables VI-IX show pos/neg ratio skew,
///      not data volume, is what destroys load balance).

#include <cstdint>

#include "casvm/data/dataset.hpp"

namespace casvm::data {

/// Specification of a Gaussian-mixture two-class dataset.
struct MixtureSpec {
  std::size_t samples = 1000;   ///< number of samples m
  std::size_t features = 16;    ///< feature dimension n
  std::size_t clusters = 4;     ///< mixture components
  double centerSpread = 6.0;    ///< stddev of component centers around 0
  double clusterSpread = 1.0;   ///< within-component stddev
  /// Minimum Euclidean distance enforced between component centers
  /// (rejection sampling; 0 disables). Guards against two components
  /// landing on top of each other, which would destroy the cluster
  /// structure the partitioned methods rely on.
  double minCenterSeparation = 0.0;
  double positiveFraction = 0.5;  ///< target fraction of +1 labels
  double labelNoise = 0.02;     ///< per-sample label flip probability
  /// When true each mixture component carries one dominant label, so a
  /// Euclidean partition of the data is also a good label partition (the
  /// regime where CP/CA-SVM keep accuracy). When false, labels come from a
  /// single global hyperplane through all clusters.
  bool clusterCorrelatedLabels = true;
  /// Fraction of feature entries zeroed per sample (0 = fully dense).
  double sparsity = 0.0;
  /// How sparsity is applied. `false`: independent per-sample dropout
  /// (distances become dominated by mismatched supports — cluster
  /// structure is destroyed, useful as an adversarial case). `true`: each
  /// mixture component owns a fixed feature support of (1-sparsity)*n
  /// coordinates (like per-topic vocabularies in text data), so
  /// within-component distances stay small and across-component distances
  /// large — the regime real sparse corpora like webspam live in.
  bool clusterSparsePattern = false;
  /// Emit CSR storage; requires sparsity > 0 to be meaningful.
  bool sparseOutput = false;
  std::uint64_t seed = 42;
};

/// Generate a dataset from the mixture specification. Deterministic in
/// (spec, spec.seed).
Dataset generateMixture(const MixtureSpec& spec);

/// Rows [begin, begin + count) of the virtual sample set described by
/// `spec` (`spec.samples` is the virtual total; the window must fit in it).
/// The component geometry (centers, dominant labels, hyperplane, sparse
/// supports) derives from Rng(spec.seed) exactly as in generateMixture,
/// then every sample draws from its own counter-derived RNG stream — so
/// the output is invariant in the chunking: generating [0, m) in one call
/// or as any partition into consecutive chunks produces bitwise-identical
/// rows. This is how million-sample stand-ins are produced without ever
/// materializing more than the requested window. Note the per-sample
/// streams differ from generateMixture's single sequential stream: a full
/// window draws the same distribution but is not byte-equal to
/// generateMixture(spec).
Dataset generateMixtureChunk(const MixtureSpec& spec, std::size_t begin,
                             std::size_t count);

/// Two well-separated Gaussians, one per class; the easiest sanity-check
/// dataset (linearly separable with margin ~ separation).
Dataset generateTwoGaussians(std::size_t samples, std::size_t features,
                             double separation, std::uint64_t seed);

/// Multi-class companion to generateMixture: mixture components are dealt
/// round-robin onto `numClasses` classes; the Dataset's binary labels are
/// placeholders (+1) and the real classes live in `labels`. Feed the pair
/// to core::trainMulticlass.
struct MulticlassData {
  Dataset features;
  std::vector<int> labels;
};
MulticlassData generateMulticlassMixture(const MixtureSpec& spec,
                                         int numClasses);

/// Random even split of [0, m) into train/test index lists.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};
Split trainTestSplit(std::size_t m, double testFraction, std::uint64_t seed);

}  // namespace casvm::data
