#pragma once

/// \file registry.hpp
/// Synthetic stand-ins for the paper's seven evaluation datasets plus the
/// `forest` set used in Table III and a tiny `toy` set for fast tests.
///
/// Each stand-in matches the *shape* of its real counterpart — feature
/// count (capped for single-node feasibility), class balance, sparsity and
/// cluster structure — at a reduced sample count controlled by `scale`.
/// DESIGN.md §4 documents the substitution; pass a real LIBSVM file to the
/// bench binaries to run on actual data instead.

#include <cstdint>
#include <string>
#include <vector>

#include "casvm/data/dataset.hpp"
#include "casvm/data/synth.hpp"

namespace casvm::data {

/// A train/test pair with per-dataset solver defaults.
struct NamedDataset {
  std::string name;
  Dataset train;
  Dataset test;
  double suggestedGamma = 0.0;  ///< Gaussian-kernel gamma tuned per set
  double suggestedC = 1.0;      ///< regularization constant
};

/// Shape metadata for one stand-in (before scaling).
struct StandinSpec {
  std::string name;
  std::string applicationField;  ///< per the paper's Table XII
  std::size_t paperSamples;      ///< sample count reported in the paper
  std::size_t paperFeatures;     ///< feature count reported in the paper
  MixtureSpec mixture;           ///< generator parameters at scale = 1
  double gamma;
  double C;
};

/// All registered stand-in names (adult, epsilon, face, gisette, ijcnn,
/// usps, webspam, forest, toy).
std::vector<std::string> standinNames();

/// Shape metadata for one stand-in; throws casvm::Error for unknown names.
const StandinSpec& standinSpec(const std::string& name);

/// Generate train and test sets for a stand-in. `scale` multiplies the
/// sample count (scale = 1 gives the container-feasible default size, not
/// the paper's full size). Deterministic in (name, scale, seed).
NamedDataset standin(const std::string& name, double scale = 1.0,
                     std::uint64_t seed = 42);

/// Generate a stand-in at an explicit sample count through the chunked
/// generator (bounded memory; deterministic at any chunk size). Train rows
/// are [0, samples) of one virtual sample set and the held-out test rows
/// follow at [samples, samples + max(16, samples/5)). This is the
/// million-sample entry point: unlike standin() it never materializes a
/// joint train+test buffer. Throws casvm::Error above the 2^24-sample
/// generator budget.
NamedDataset standinSized(const std::string& name, std::size_t samples,
                          std::uint64_t seed = 42);

}  // namespace casvm::data
