#pragma once

/// \file dataset.hpp
/// Training data container for casvm.
///
/// A Dataset is an immutable-shape collection of m labeled samples with n
/// features, stored either dense (row-major float) or sparse (CSR). All
/// kernel-relevant primitives (dot products, squared distances, row
/// accumulation) are provided here so the kernel/solver layers never touch
/// the storage layout. Squared norms of every row are precomputed, since
/// the Gaussian kernel evaluates ||xi - xj||^2 = |xi|^2 + |xj|^2 - 2 xi.xj
/// on every SMO step.
///
/// Labels are binary, stored as +1 / -1 (the paper's two-class setting;
/// multi-class SVMs decompose into independent binary problems).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace casvm::data {

enum class Storage : std::uint8_t { Dense = 0, Sparse = 1 };

class Dataset {
 public:
  Dataset() = default;

  /// Build a dense dataset from row-major values (m*n floats) and labels.
  static Dataset fromDense(std::size_t cols, std::vector<float> values,
                           std::vector<std::int8_t> labels);

  /// Build a sparse (CSR) dataset. rowPtr has m+1 entries.
  static Dataset fromSparse(std::size_t cols, std::vector<std::size_t> rowPtr,
                            std::vector<std::uint32_t> colIdx,
                            std::vector<float> values,
                            std::vector<std::int8_t> labels);

  std::size_t rows() const { return labels_.size(); }
  std::size_t cols() const { return cols_; }
  bool empty() const { return labels_.empty(); }
  Storage storage() const { return storage_; }

  /// Label of sample i: +1 or -1.
  std::int8_t label(std::size_t i) const { return labels_[i]; }
  const std::vector<std::int8_t>& labels() const { return labels_; }

  /// Number of samples with label +1 / label -1.
  std::size_t positives() const;
  std::size_t negatives() const { return rows() - positives(); }

  /// Stored nonzeros (== rows*cols for dense).
  std::size_t nonzeros() const;

  /// Approximate in-memory footprint of the sample data in bytes; this is
  /// also the wire size used when samples move between ranks.
  std::size_t sampleBytes() const;

  /// Dense row view; only valid for Storage::Dense.
  std::span<const float> denseRow(std::size_t i) const;

  /// Sparse row views; only valid for Storage::Sparse.
  std::span<const std::uint32_t> sparseIndices(std::size_t i) const;
  std::span<const float> sparseValues(std::size_t i) const;

  // --- kernel primitives (work for both storages) -----------------------

  /// xi . xj between two rows of this dataset.
  double dot(std::size_t i, std::size_t j) const;

  /// Cached ||xi||^2.
  double selfDot(std::size_t i) const { return selfDots_[i]; }

  /// ||xi - xj||^2 via the cached norms.
  double squaredDistance(std::size_t i, std::size_t j) const {
    return selfDots_[i] + selfDots_[j] - 2.0 * dot(i, j);
  }

  /// xi . x for an external dense vector x of length cols().
  double dotWith(std::size_t i, std::span<const float> x) const;

  /// ||xi - x||^2 given the caller-computed ||x||^2.
  double squaredDistanceTo(std::size_t i, std::span<const float> x,
                           double xSelfDot) const {
    return selfDots_[i] + xSelfDot - 2.0 * dotWith(i, x);
  }

  /// acc += xi, densifying on the fly; acc must have cols() entries.
  void addRowTo(std::size_t i, std::span<double> acc) const;

  /// Densify row i into out (cols() floats, zero-filled first).
  void copyRowDense(std::size_t i, std::span<float> out) const;

  // --- restructuring -----------------------------------------------------

  /// New dataset containing rows idx[0], idx[1], ... in that order.
  Dataset subset(std::span<const std::size_t> idx) const;

  /// Concatenate two datasets with identical cols() and storage.
  static Dataset concat(const Dataset& a, const Dataset& b);

  /// Same samples with replaced labels (one +-1 label per row). Used by
  /// the multi-class decomposition to remap class pairs onto +-1.
  static Dataset relabel(Dataset ds, std::vector<std::int8_t> labels);

  // --- wire format --------------------------------------------------------

  /// Self-describing serialization of the selected rows (for Comm).
  std::vector<std::byte> pack(std::span<const std::size_t> idx) const;

  /// Serialize all rows.
  std::vector<std::byte> packAll() const;

  /// Inverse of pack().
  static Dataset unpack(std::span<const std::byte> bytes);

 private:
  void computeSelfDots();

  Storage storage_ = Storage::Dense;
  std::size_t cols_ = 0;
  std::vector<std::int8_t> labels_;
  std::vector<double> selfDots_;

  // Dense storage: rows()*cols() row-major.
  std::vector<float> dense_;

  // Sparse storage (CSR).
  std::vector<std::size_t> rowPtr_;
  std::vector<std::uint32_t> colIdx_;
  std::vector<float> sparseVals_;
};

}  // namespace casvm::data
