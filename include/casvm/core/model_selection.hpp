#pragma once

/// \file model_selection.hpp
/// Stratified k-fold cross-validation and (gamma, C) grid search over the
/// distributed training pipeline. The paper hand-picks kernel parameters
/// per dataset; a released library needs the machinery to find them. Works
/// with any Method — cross-validating CA-SVM measures exactly what a
/// deployment would get, including the partition-induced accuracy cost.

#include <cstdint>
#include <vector>

#include "casvm/core/train.hpp"

namespace casvm::core {

struct CrossValidationResult {
  std::vector<double> foldAccuracies;
  double meanAccuracy = 0.0;
  double stddev = 0.0;
  long long totalIterations = 0;
};

/// Stratified k-fold cross-validation: folds preserve the global
/// positive/negative ratio, so imbalanced data (face) does not produce
/// single-class folds. Deterministic in (ds, config, folds, seed).
CrossValidationResult crossValidate(const data::Dataset& ds,
                                    const TrainConfig& config, int folds,
                                    std::uint64_t seed = 42);

struct GridPoint {
  double gamma = 0.0;
  double C = 0.0;
  double meanAccuracy = 0.0;
  double stddev = 0.0;
};

struct GridSearchResult {
  GridPoint best;
  std::vector<GridPoint> evaluated;  ///< every grid point, in sweep order
};

/// Exhaustive (gamma, C) sweep with k-fold CV at each point, Gaussian
/// kernel. Ties go to the smaller C (the simpler model).
GridSearchResult gridSearch(const data::Dataset& ds, TrainConfig config,
                            const std::vector<double>& gammas,
                            const std::vector<double>& Cs, int folds,
                            std::uint64_t seed = 42);

}  // namespace casvm::core
