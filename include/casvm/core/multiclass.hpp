#pragma once

/// \file multiclass.hpp
/// Multi-class SVMs on top of the distributed binary machinery.
///
/// The paper (§II-A): "Multi-class (3 or more classes) SVMs may be
/// implemented as several independent binary-class SVMs; a multi-class SVM
/// can be easily processed in parallel once its constituent binary-class
/// SVMs are available." This module implements the standard one-vs-one
/// decomposition: one binary model per unordered class pair, majority
/// voting at prediction (ties broken by accumulated decision margin).
/// Every pairwise subproblem is trained with the full distributed pipeline
/// (any Method, including CA-SVM), so the communication-avoiding behaviour
/// carries over unchanged.

#include <vector>

#include "casvm/core/train.hpp"

namespace casvm::core {

class MulticlassModel {
 public:
  struct Pair {
    int positiveClass = 0;  ///< mapped to label +1 in the binary problem
    int negativeClass = 0;  ///< mapped to label -1
    DistributedModel model;
  };

  MulticlassModel() = default;
  MulticlassModel(std::vector<int> classes, std::vector<Pair> pairs);

  /// Distinct class ids, ascending.
  const std::vector<int>& classes() const { return classes_; }
  const std::vector<Pair>& pairs() const { return pairs_; }
  std::size_t numPairs() const { return pairs_.size(); }

  /// Predicted class of row i by one-vs-one majority vote.
  int predictFor(const data::Dataset& ds, std::size_t i) const;

  /// Fraction of rows whose predicted class matches `labels`.
  double accuracy(const data::Dataset& ds,
                  const std::vector<int>& labels) const;

  /// Wire/disk serialization.
  std::vector<std::byte> pack() const;
  static MulticlassModel unpack(std::span<const std::byte> bytes);
  void save(const std::string& path) const;
  static MulticlassModel load(const std::string& path);

 private:
  std::vector<int> classes_;
  std::vector<Pair> pairs_;
};

struct MulticlassResult {
  MulticlassModel model;
  long long totalIterations = 0;
  double trainSeconds = 0.0;  ///< summed critical-path time of the pairs
  std::size_t pairsTrained = 0;
};

/// Train a one-vs-one multi-class SVM. `classLabels` carries one integer
/// class per row of `features` (the dataset's own binary labels are
/// ignored). Each pairwise subproblem runs through core::train with
/// `config`; the process count is lowered automatically for pairs too
/// small to spread over config.processes ranks.
MulticlassResult trainMulticlass(const data::Dataset& features,
                                 const std::vector<int>& classLabels,
                                 const TrainConfig& config);

/// Group-parallel variant: the engine runs `groups * config.processes`
/// ranks, the world communicator is split into `groups` sub-communicators,
/// and the pairwise subproblems are dealt round-robin onto the groups so
/// they train *concurrently* — the paper's "a multi-class SVM can be
/// easily processed in parallel once its constituent binary-class SVMs are
/// available", realized with Comm::split. Produces the same models as the
/// sequential trainer (same seeds, same subproblems). At most 15 pairs per
/// group (the per-communicator split budget).
MulticlassResult trainMulticlassParallel(const data::Dataset& features,
                                         const std::vector<int>& classLabels,
                                         const TrainConfig& config,
                                         int groups);

}  // namespace casvm::core
