#pragma once

/// \file spmd.hpp
/// SPMD building blocks shared by the method implementations (and reusable
/// for new methods): guarded local sub-SVM training, all-to-all sample
/// exchange after a partitioning step, and the deposit board through which
/// ranks publish their results to the driver without generating network
/// traffic (rank-disjoint shared-memory slots; this models local disk
/// output, not communication, so it must not pollute the traffic matrix).

#include <vector>

#include "casvm/cluster/partition.hpp"
#include "casvm/net/comm.hpp"
#include "casvm/solver/smo.hpp"

namespace casvm::core {

/// Outcome of one local sub-SVM solve.
struct LocalSolve {
  solver::Model model;
  std::vector<double> alpha;  ///< full-length alpha over the local rows
  long long iterations = 0;
  long long svs = 0;
};

/// Train a sub-SVM on `local`, handling the degenerate cases partitioning
/// can produce: an empty part yields an empty model, and a single-class
/// part (a pure K-means cluster) yields a constant classifier with bias
/// equal to the class label — the correct local decision rule when every
/// nearby training point agrees.
LocalSolve trainLocalSvm(const data::Dataset& local,
                         const solver::SolverOptions& options,
                         std::span<const double> initialAlpha = {});

/// All-to-all exchange moving each local sample to the rank that owns its
/// part: after this call rank r holds exactly the samples with
/// assign[i] == r across all ranks. Used by every K-means-partitioned
/// method to turn a logical partition into a physical one.
data::Dataset exchangeToOwners(net::Comm& comm, const data::Dataset& local,
                               const std::vector<int>& assign);

/// Per-rank result board: rank-indexed slots the SPMD function fills and
/// the driver reads after the run. Writes are disjoint by rank, so no
/// synchronization (beyond thread join) is needed.
struct RankBoard {
  explicit RankBoard(int size)
      : models(static_cast<std::size_t>(size)),
        alphas(static_cast<std::size_t>(size)),
        centers(static_cast<std::size_t>(size)),
        iterations(static_cast<std::size_t>(size), 0),
        samples(static_cast<std::size_t>(size), 0),
        svs(static_cast<std::size_t>(size), 0),
        positives(static_cast<std::size_t>(size), 0),
        initEndVirtual(static_cast<std::size_t>(size), 0.0),
        trainEndVirtual(static_cast<std::size_t>(size), 0.0),
        kmeansLoops(static_cast<std::size_t>(size), 0),
        layerRecords(static_cast<std::size_t>(size)),
        retries(static_cast<std::size_t>(size), 0),
        recovered(static_cast<std::size_t>(size), 0),
        checkpointsLoaded(static_cast<std::size_t>(size), 0),
        auxIterations(static_cast<std::size_t>(size), 0),
        shrinkEngagedIter(static_cast<std::size_t>(size), -1),
        rowBcastsSkipped(static_cast<std::size_t>(size), 0) {}

  std::vector<solver::Model> models;
  std::vector<std::vector<double>> alphas;
  std::vector<std::vector<float>> centers;
  std::vector<long long> iterations;
  std::vector<long long> samples;
  std::vector<long long> svs;
  std::vector<long long> positives;
  std::vector<double> initEndVirtual;
  std::vector<double> trainEndVirtual;
  std::vector<std::size_t> kmeansLoops;

  /// One record per layer a rank was active in (tree methods).
  struct LayerRecord {
    int layer = 0;
    long long samples = 0;
    long long iterations = 0;
    long long svs = 0;
    double seconds = 0.0;
  };
  std::vector<std::vector<LayerRecord>> layerRecords;

  /// Recovery bookkeeping (casvm::ckpt): retry attempts consumed, whether
  /// the rank crashed-then-recovered in-run, and checkpoints restored.
  std::vector<int> retries;
  std::vector<char> recovered;
  std::vector<long long> checkpointsLoaded;

  /// Secondary iteration counter for methods with two kinds of work:
  /// PBM records its global pair-correction iterations here (identical on
  /// every rank) next to the per-rank block-solve iterations above.
  std::vector<long long> auxIterations;
  /// First global iteration at which an adaptive shrink pass committed
  /// (DisSmoShrink), -1 if shrinking never engaged.
  std::vector<long long> shrinkEngagedIter;
  /// Elected-row broadcasts served from the replicated cache instead of
  /// the wire (DisSmoShrink).
  std::vector<long long> rowBcastsSkipped;

  /// Traffic snapshot at the init/train boundary, written by rank 0.
  net::TrafficSnapshot initSnapshot;
};

/// Current virtual time of this rank (samples the CPU clock first).
double virtualNow(net::Comm& comm);

/// RAII phase span on the comm's trace lane: records a Cat::Phase span
/// from construction to destruction on the rank's virtual timeline. No-op
/// (two pointer tests) when the comm has no lane. `name` must be a string
/// literal (the recorder stores the pointer); `detail` is a free-form
/// integer rendered into the span args (tree methods pass the layer).
class PhaseSpan {
 public:
  PhaseSpan(net::Comm& comm, const char* name, long long detail = -1);
  ~PhaseSpan();
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  net::Comm& comm_;
  const char* name_;
  long long detail_;
  double start_ = 0.0;
};

}  // namespace casvm::core
