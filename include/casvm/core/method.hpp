#pragma once

/// \file method.hpp
/// The distributed SVM training methods this library implements — the
/// paper's baseline (Dis-SMO), the two prior partitioned methods it
/// re-implements (Cascade, DC-SVM), and its five step-by-step refinements
/// (DC-Filter, CP-SVM, BKM-CA, FCFS-CA, RA-CA). BKM-CA, FCFS-CA and RA-CA
/// together constitute CA-SVM; RA-CA is what the paper reports as CA-SVM
/// in the scaling studies. Two successors from the related work fill the
/// comm-vs-accuracy middle between chatty Dis-SMO and zero-comm CA-SVM:
/// Dis-SMO with distributed adaptive shrinking (Narasimhan & Vishnu,
/// arXiv:1406.5161) and Parallel Block Minimization (Hsieh et al.,
/// arXiv:1608.02010).

#include <string>
#include <vector>

namespace casvm::core {

enum class Method {
  DisSmo = 0,    ///< distributed SMO (Cao et al. style), one global solve
  Cascade = 1,   ///< binary reduction tree passing support vectors
  DcSvm = 2,     ///< K-means partition, tree passing *all* samples
  DcFilter = 3,  ///< K-means partition + SV filtering (paper §III-B)
  CpSvm = 4,     ///< K-means partition, P independent SVMs (paper §IV-A)
  BkmCa = 5,     ///< balanced K-means + ratio balance, independent SVMs
  FcfsCa = 6,    ///< FCFS partition + ratio balance, independent SVMs
  RaCa = 7,      ///< random even partition, zero-communication CA-SVM
  Pbm = 8,       ///< parallel block minimization + global line search
  DisSmoShrink = 9,  ///< Dis-SMO with distributed adaptive shrinking
};

/// Canonical lowercase name ("dis-smo", "cascade", ...).
std::string methodName(Method method);

/// Inverse of methodName; throws casvm::Error for unknown names.
Method methodFromName(const std::string& name);

/// All methods along the comm-vs-accuracy ladder: Dis-SMO first (one
/// allreduce per iteration), then its shrinking variant, then PBM (one
/// allreduce per outer round), then the tree and partitioned methods in
/// the paper's presentation order.
std::vector<Method> allMethods();

/// Uses a binary reduction tree across layers (Cascade, DC-SVM, DC-Filter).
bool isTreeMethod(Method method);

/// Trains P independent sub-SVMs with per-part models (CP/BKM/FCFS/RA).
bool isPartitionedMethod(Method method);

/// Runs K-means (or a K-means variant) during initialization.
bool usesKmeans(Method method);

/// Member of the CA-SVM family (BKM-CA, FCFS-CA, RA-CA).
bool isCaSvm(Method method);

/// Solves the single global dual problem with every rank cooperating on
/// one model (Dis-SMO, Dis-SMO+shrinking, PBM) — as opposed to the tree
/// and partitioned methods, which solve per-part subproblems.
bool isGlobalMethod(Method method);

}  // namespace casvm::core
