#pragma once

/// \file distributed_model.hpp
/// The model produced by distributed training. Tree methods (Dis-SMO,
/// Cascade, DC-SVM, DC-Filter) end with one global model; partitioned
/// methods (CP-SVM and the CA-SVM family) end with P per-part model files
/// MF_1..MF_P plus their data centers CT_1..CT_P, and prediction routes
/// each query to the model whose center is nearest (paper Fig. 3 and
/// Algorithm 6's prediction process).

#include <vector>

#include "casvm/solver/model.hpp"

namespace casvm::core {

class DistributedModel {
 public:
  DistributedModel() = default;

  /// One global model (tree methods).
  static DistributedModel single(solver::Model model);

  /// P per-part models with their centers (partitioned methods).
  static DistributedModel routed(std::vector<solver::Model> models,
                                 std::vector<std::vector<float>> centers);

  /// True when prediction routes by nearest center.
  bool isRouted() const { return !centers_.empty(); }

  std::size_t numModels() const { return models_.size(); }
  const solver::Model& model(std::size_t i) const { return models_[i]; }
  const std::vector<std::vector<float>>& centers() const { return centers_; }

  /// Support vectors across all sub-models.
  std::size_t totalSupportVectors() const;

  /// Index of the sub-model that would classify row i (0 when single).
  std::size_t route(const data::Dataset& ds, std::size_t i) const;

  /// Decision value for row i of ds (eqn. 3 against the routed model).
  double decisionFor(const data::Dataset& ds, std::size_t i) const;

  /// Predicted label (+1 / -1).
  std::int8_t predictFor(const data::Dataset& ds, std::size_t i) const {
    return decisionFor(ds, i) >= 0.0 ? 1 : -1;
  }

  /// Fraction of `testSet` classified correctly.
  double accuracy(const data::Dataset& testSet) const;

  /// Wire/disk serialization.
  std::vector<std::byte> pack() const;
  static DistributedModel unpack(std::span<const std::byte> bytes);
  void save(const std::string& path) const;
  static DistributedModel load(const std::string& path);

 private:
  std::vector<solver::Model> models_;
  std::vector<std::vector<float>> centers_;   // empty for single models
  std::vector<double> centerSelfDots_;        // cached ||CT_j||^2
};

}  // namespace casvm::core
