#pragma once

/// \file predict.hpp
/// The distributed prediction process of the paper's Algorithm 6.
///
/// After partitioned training the P model files stay on their ranks. To
/// classify a batch: the data centers CT_j are gathered at the root, the
/// root routes every test sample to the rank whose center is nearest,
/// each rank predicts with its local model MF_j, and the labels travel
/// back. The paper's point — and what the returned traffic statistics
/// show — is that this moves only the test samples and one byte per
/// prediction, which is negligible next to training-data volumes ("this
/// communication will not bring about significant overheads").

#include "casvm/core/distributed_model.hpp"
#include "casvm/net/comm.hpp"

namespace casvm::core {

struct DistributedPredictResult {
  std::vector<std::int8_t> predictions;  ///< one label per test row
  double accuracy = 0.0;                 ///< against testSet's labels
  net::RunStats runStats;                ///< the "little communication"
};

/// Run Algorithm 6's prediction process over a simulated cluster with one
/// rank per sub-model (a single rank for non-routed models). The test set
/// starts on rank 0 and is routed by nearest data center.
DistributedPredictResult distributedPredict(const DistributedModel& model,
                                            const data::Dataset& testSet,
                                            net::CostModel cost = {});

}  // namespace casvm::core
