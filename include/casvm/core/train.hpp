#pragma once

/// \file train.hpp
/// Top-level distributed training driver.
///
/// train() spawns a casvm::net engine with P simulated ranks, runs the
/// selected method SPMD, and returns the combined model plus the
/// measurements the paper reports: init/training time, iteration counts
/// (total and per rank/layer), per-phase communication traffic and the
/// per-rank virtual clocks.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "casvm/core/distributed_model.hpp"
#include "casvm/core/method.hpp"
#include "casvm/lowrank/landmarks.hpp"
#include "casvm/net/comm.hpp"
#include "casvm/solver/smo.hpp"

namespace casvm::obs {
class TraceRecorder;
}

namespace casvm::ckpt {
class CheckpointStore;
}

namespace casvm::core {

/// Kernel matrix the sub-solvers train against (see TrainConfig below).
enum class SolverBackend : std::uint8_t {
  Exact = 0,    ///< evaluate K(x_i, x_j) on demand (the default)
  Nystrom = 1,  ///< train against the low-rank K̃ = Z·Zᵀ (casvm::lowrank)
};

/// Stable names for CLI flags and run fingerprints.
const char* backendName(SolverBackend backend);
SolverBackend backendFromName(std::string_view name);

struct TrainConfig {
  Method method = Method::RaCa;
  int processes = 8;                  ///< simulated ranks P
  solver::SolverOptions solver;       ///< shared sub-solver settings
  std::size_t kmeansMaxLoops = 300;   ///< K-means loop cap
  double kmeansChangeThreshold = 0.0; ///< Algorithm 2's delta/m threshold
  std::uint64_t seed = 42;
  net::CostModel cost;                ///< alpha-beta model for virtual time
  /// RA-CA data placement: casvm1 stages the whole dataset on rank 0 and
  /// scatters it (communication!); casvm2 — the paper's CA-SVM — assumes
  /// the data is born distributed and needs no communication at all.
  bool raInitialDataOnRoot = false;
  /// Number of full Cascade passes (tree methods only). The paper's Fig. 2:
  /// "if the result at the bottom layer is not good enough, the user can
  /// distribute all the support vectors to all the nodes and re-do the
  /// whole pass" — pass 2+ broadcasts the final SV set and retrains every
  /// layer warm-started, with each node's original data augmented by the
  /// global SVs. "For most applications ... one pass is enough."
  int cascadePasses = 1;
  /// Pass the previous layer's alphas as a warm start when merging in the
  /// tree methods (the paper: it "can significantly reduce the iterations
  /// for convergence"). Off only for the ablation bench.
  bool treeWarmStart = true;
  /// Enforce per-class quotas in the BKM-CA / FCFS-CA partitioners (§IV-B1:
  /// equal data volume alone does not balance load; equal pos/neg ratios
  /// do). On by default, as in the paper's final methods; turn off to
  /// reproduce the Table VI/VII imbalance.
  bool ratioBalance = true;
  /// Deterministic fault schedule for the engine run (empty = fault-free).
  /// Partitioned methods survive an injected rank crash with a degraded
  /// model; tree methods and Dis-SMO fail fast naming the fault.
  net::FaultPlan faults;
  /// Engine deadlock watchdog timeout in wall seconds (<= 0 disables).
  double watchdogSeconds = 30.0;

  // --- transport (casvm::net backends) -------------------------------------
  /// Delivery backend: Thread (default, one thread per rank, bitwise the
  /// historical behaviour) or Proc (one forked worker process per rank
  /// over shared-memory rings, with supervised respawn and heartbeats —
  /// required for the kill:/hang: fault kinds, which deliver real
  /// signals). Excluded from the run fingerprint: the trained model is
  /// transport-invariant, so checkpoints interoperate across backends.
  net::TransportKind transport = net::TransportKind::Thread;
  /// Heartbeat cadence, receive timeout and respawn backoff for the proc
  /// backend (validated when the engine is configured).
  net::TransportTuning transportTuning;
  /// Supervisor lifecycle log file (proc backend; empty = stderr).
  std::string supervisorLog;
  /// Optional trace recorder: when set, the engine opens one lane per rank
  /// and the run emits comm-op spans, phase spans and solver progress
  /// events into it (see casvm/obs/trace.hpp). Must outlive train().
  obs::TraceRecorder* trace = nullptr;

  // --- checkpoint / recovery (casvm::ckpt) --------------------------------
  /// Optional checkpoint store. When set, the run persists durable state:
  /// the partition assignment + routing centers, mid-solve SMO snapshots
  /// every `checkpointEvery` iterations, completed per-rank sub-models
  /// (partitioned methods) and per-layer outputs (tree methods). Must
  /// outlive train().
  ckpt::CheckpointStore* checkpoints = nullptr;
  /// Solver snapshot cadence in SMO iterations (used when `checkpoints`
  /// is set; must be > 0 then).
  std::size_t checkpointEvery = 4096;
  /// Restore from `checkpoints` instead of starting fresh: completed
  /// sub-problems are skipped and an interrupted solve re-enters
  /// mid-stream from its newest consistent snapshot. The resumed model is
  /// bitwise-identical to the uninterrupted run's.
  bool resume = false;
  /// In-run rank retry budget (partitioned methods, needs `checkpoints`):
  /// a rank killed by an injected fault during its local training restarts
  /// its own work from the last checkpoint up to this many times before
  /// the run falls back to the degraded P-1 path.
  int rankRetries = 0;
  /// Virtual-clock backoff charged before retry attempt k (k * this).
  double retryBackoffSeconds = 0.05;

  // --- PBM (Method::Pbm) ---------------------------------------------------
  /// Outer rounds of block-solve + global line search (the comm model's r;
  /// the pure pair-correction tail polishes whatever the rounds leave).
  int pbmRounds = 8;
  /// Iteration cap per warm-started block solve (0 = the solver's auto
  /// cap, 100*m_local + 10000).
  std::size_t pbmInnerIterations = 0;
  /// Global pair-correction (Dis-SMO) iterations appended to each round to
  /// move equality-constraint mass between blocks. Generous by default:
  /// with the replicated row store a correction of an already-seen sample
  /// costs only the two election allreduces, and letting rounds polish
  /// converges in fewer rounds — less sync traffic AND fewer block-solve
  /// iterations than a tight cap.
  int pbmPairIterations = 256;

  // --- solver backend (casvm::lowrank) -------------------------------------
  /// Which kernel matrix the sub-solvers train against. Exact evaluates
  /// K(x_i, x_j) on demand; Nystrom trains against the low-rank
  /// approximation K̃ = Z·Zᵀ (see lowrank/nystrom.hpp) — per-cluster
  /// landmark factors on the partitioned/tree paths, one global landmark
  /// set on Dis-SMO — trading ≤~1% accuracy for row fills over r ≪ n
  /// columns. Model extraction and prediction stay exact either way.
  /// Method::Pbm does not support the Nyström backend (its replicated
  /// line search is defined over exact cross-block rows) and rejects it.
  SolverBackend solverBackend = SolverBackend::Exact;
  /// Landmarks per factor (per cluster on partitioned/tree paths, total
  /// across ranks on Dis-SMO). The effective rank can be lower after
  /// eigenvalue truncation.
  std::size_t nystromLandmarks = 64;
  /// Landmark selection strategy (uniform | kmeans++).
  lowrank::LandmarkStrategy nystromStrategy = lowrank::LandmarkStrategy::KmeansPP;
  /// Relative eigenvalue floor for the factor's rank truncation.
  double nystromEigenFloor = 1e-10;
};

/// Per-layer profile of a tree method run (the paper's Table V).
struct LayerStats {
  int layer = 0;      ///< 1-based layer index
  int nodesUsed = 0;  ///< active ranks in this layer
  std::vector<long long> samplesPerNode;     ///< per active rank
  std::vector<long long> iterationsPerNode;  ///< per active rank
  std::vector<long long> svsPerNode;         ///< per active rank
  std::vector<double> secondsPerNode;        ///< per active rank (virtual)

  long long maxIterations() const;
  long long totalSVs() const;
  double maxSeconds() const;
  long long maxSamples() const;
};

/// Survival record for one partition of a partitioned-method run.
struct PartitionCoverage {
  int rank = -1;           ///< rank that owned the partition
  long long samples = 0;   ///< training samples the partition held
  bool survived = true;    ///< false when the owning rank crashed
};

struct TrainResult {
  Method method = Method::RaCa;
  DistributedModel model;

  // --- fault tolerance -----------------------------------------------------
  /// True when ranks crashed (injected faults) but training completed with
  /// the surviving partitions; the model then routes around the holes.
  bool degraded = false;
  /// Ranks that crashed during a degraded run, ascending.
  std::vector<int> failedRanks;
  /// Per-partition survival detail (partitioned methods only).
  std::vector<PartitionCoverage> coverage;
  /// Fraction of training samples covered by surviving partitions (1.0 for
  /// a fault-free run).
  double coveredFraction = 1.0;

  // --- recovery (casvm::ckpt) ----------------------------------------------
  /// Ranks that crashed mid-training but were recovered by in-run retry:
  /// their partitions ARE covered (they never appear in failedRanks), so a
  /// fully recovered run has degraded == false with P sub-models.
  std::vector<int> recoveredRanks;
  /// Retry attempts consumed per rank (size P; all zero without retries).
  std::vector<int> retriesPerRank;
  /// True when this run restored state from a checkpoint directory.
  bool resumed = false;
  /// Checkpoint artifacts restored across all ranks (resume + retry).
  std::size_t checkpointsLoaded = 0;

  // --- timing (virtual seconds: per-rank CPU + modeled communication) ----
  double initSeconds = 0.0;   ///< partitioning/distribution phase
  double trainSeconds = 0.0;  ///< SVM solve phase (critical path)
  double wallSeconds = 0.0;   ///< real elapsed time of the engine run

  // --- iterations ---------------------------------------------------------
  /// Summed over every rank and layer (what Tables XIII-XVIII report).
  long long totalIterations = 0;
  /// Critical path: per layer the max over active ranks, summed over layers.
  long long criticalIterations = 0;

  /// Per-rank detail for single-layer methods (empty for tree methods).
  std::vector<long long> iterationsPerRank;
  std::vector<long long> samplesPerRank;
  std::vector<long long> svsPerRank;
  std::vector<long long> positivesPerRank;
  std::vector<double> trainSecondsPerRank;

  /// Per-layer detail for tree methods (empty otherwise).
  std::vector<LayerStats> layers;

  /// K-means convergence loops (methods that run K-means; 0 otherwise).
  std::size_t kmeansLoops = 0;

  /// First global iteration at which adaptive shrinking committed a pass
  /// (DisSmoShrink), -1 when it never engaged (other methods: always -1).
  long long shrinkEngagedIteration = -1;
  /// Elected-row broadcasts served from the replicated cache instead of
  /// the wire, summed over ranks (DisSmoShrink; 0 otherwise).
  long long electedRowBcastsSkipped = 0;
  /// Global pair-correction iterations (Method::Pbm; 0 otherwise).
  long long pairIterations = 0;

  // --- communication -------------------------------------------------------
  net::TrafficSnapshot initTraffic;   ///< partitioning/distribution traffic
  net::TrafficSnapshot trainTraffic;  ///< SVM-phase traffic
  net::RunStats runStats;             ///< full engine statistics

  /// Convenience: bytes moved during training (the paper's Table X value
  /// counts the whole algorithm: init + train).
  std::size_t totalTrafficBytes() const {
    return runStats.traffic.totalBytes();
  }
};

/// Train `trainSet` with the configured method. The dataset is split into
/// its initial per-rank placement outside the engine (modelling data that
/// lives distributed on a parallel filesystem), then the method runs SPMD.
TrainResult train(const data::Dataset& trainSet, const TrainConfig& config);

}  // namespace casvm::core
