#pragma once

/// \file metrics.hpp
/// Binary-classification metrics beyond plain accuracy. On the paper's
/// imbalanced workloads (face: ~5% positives) accuracy alone is nearly
/// blind — a constant "-1" classifier scores 95% — so recall/precision/F1
/// and the full confusion matrix are what actually distinguish models.

#include <string>

#include "casvm/core/distributed_model.hpp"

namespace casvm::core {

/// Binary confusion counts and the derived rates.
struct BinaryMetrics {
  long long truePositives = 0;
  long long trueNegatives = 0;
  long long falsePositives = 0;
  long long falseNegatives = 0;

  long long total() const {
    return truePositives + trueNegatives + falsePositives + falseNegatives;
  }
  double accuracy() const;
  /// TP / (TP + FN); 0 when there are no positives.
  double recall() const;
  /// TP / (TP + FP); 0 when nothing was predicted positive.
  double precision() const;
  /// Harmonic mean of precision and recall; 0 when either is 0.
  double f1() const;
  /// TN / (TN + FP); 0 when there are no negatives.
  double specificity() const;
  /// Balanced accuracy: (recall + specificity) / 2.
  double balancedAccuracy() const;
  /// Matthews correlation coefficient in [-1, 1]; 0 on degenerate counts.
  double matthews() const;

  /// Multi-line human-readable report.
  std::string report() const;
};

/// Evaluate a model over a labeled test set.
BinaryMetrics evaluate(const DistributedModel& model,
                       const data::Dataset& testSet);

/// Evaluate precomputed predictions against a labeled test set.
BinaryMetrics evaluatePredictions(const std::vector<std::int8_t>& predictions,
                                  const data::Dataset& testSet);

}  // namespace casvm::core
