#pragma once

/// \file pbm_curvature.hpp
/// Distributed curvature for PBM's global line search: h = c^T K c over the
/// round's s changed samples.
///
/// The naive replicated evaluation is O(s^2) kernel evaluations on EVERY
/// rank; distributing it drops each rank to O(s^2 / P) at the cost of one
/// s-word allgatherv. The decomposition is per-sample terms
///
///     t_a = c_a^2 K(x_a, x_a) + sum_{b > a} 2 c_a c_b K(x_a, x_b)
///
/// (diagonal plus this sample's slice of the upper triangle), with
/// h = sum_a t_a. Determinism contract: rank r owns the contiguous index
/// block [r*s/P, (r+1)*s/P); each t_a accumulates its b-loop serially
/// ascending; the allgatherv concatenates the blocks back into ascending-a
/// order; and the final reduction is a serial left-to-right sum. Every rank
/// therefore computes the bitwise-identical h, for ANY process count —
/// P = 1 and P = 64 agree to the last bit, because the per-term grouping
/// and the term-sum order never depend on P.
///
/// Exposed as free functions (not buried in the PBM body) so tests can
/// assert the fixed-order-reduction property directly.

#include <cstddef>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "casvm/kernel/kernel.hpp"

namespace casvm::core {

/// Row accessor: borrowed feature view of changed sample `j`.
using PbmRowFn = std::function<std::span<const float>(std::size_t)>;

/// Curvature terms t_a for a in [begin, end) — one rank's contiguous share.
/// `coefs[a]` is c_a = y_a * Delta_a and `rowDot[a]` the row's self-dot.
inline std::vector<double> pbmCurvatureTerms(const kernel::Kernel& kern,
                                             std::span<const double> coefs,
                                             const PbmRowFn& rowOf,
                                             std::span<const double> rowDot,
                                             std::size_t begin,
                                             std::size_t end) {
  std::vector<double> terms;
  terms.reserve(end - begin);
  const std::size_t s = coefs.size();
  for (std::size_t a = begin; a < end; ++a) {
    double t = coefs[a] * coefs[a] *
               kern.evalVectors(rowOf(a), rowDot[a], rowOf(a), rowDot[a]);
    for (std::size_t b = a + 1; b < s; ++b) {
      t += 2.0 * coefs[a] * coefs[b] *
           kern.evalVectors(rowOf(a), rowDot[a], rowOf(b), rowDot[b]);
    }
    terms.push_back(t);
  }
  return terms;
}

/// Serial left-to-right sum of the concatenated terms (the fixed-order
/// reduction every rank replays identically).
inline double pbmCurvatureSum(std::span<const double> terms) {
  double h = 0.0;
  for (double t : terms) h += t;
  return h;
}

/// The contiguous index block rank r owns out of s samples: [first, last).
inline std::pair<std::size_t, std::size_t> pbmCurvatureBlock(std::size_t s,
                                                             int rank,
                                                             int procs) {
  const auto ur = static_cast<std::size_t>(rank);
  const auto up = static_cast<std::size_t>(procs);
  return {s * ur / up, s * (ur + 1) / up};
}

}  // namespace casvm::core
