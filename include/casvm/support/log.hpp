#pragma once

/// \file log.hpp
/// Minimal leveled logging. Off-by-default at Debug; the level is a process
/// global because log output is for humans running benches/examples, not a
/// data channel.

#include <sstream>
#include <string>

namespace casvm {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the global threshold; messages below it are discarded.
void setLogLevel(LogLevel level);

/// Current global threshold.
LogLevel logLevel();

namespace detail {
void logMessage(LogLevel level, const std::string& msg);
}

}  // namespace casvm

#define CASVM_LOG(level, expr)                               \
  do {                                                       \
    if (static_cast<int>(level) >=                           \
        static_cast<int>(::casvm::logLevel())) {             \
      std::ostringstream casvm_log_os;                       \
      casvm_log_os << expr;                                  \
      ::casvm::detail::logMessage(level, casvm_log_os.str()); \
    }                                                        \
  } while (0)

#define CASVM_DEBUG(expr) CASVM_LOG(::casvm::LogLevel::Debug, expr)
#define CASVM_INFO(expr) CASVM_LOG(::casvm::LogLevel::Info, expr)
#define CASVM_WARN(expr) CASVM_LOG(::casvm::LogLevel::Warn, expr)
#define CASVM_ERROR(expr) CASVM_LOG(::casvm::LogLevel::Error, expr)
