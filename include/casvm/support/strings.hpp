#pragma once

/// \file strings.hpp
/// Small string-building helpers shared by the JSON/report writers.

#include <string>

namespace casvm {

/// printf into a freshly sized std::string: measures with a first
/// vsnprintf pass, then formats into a buffer guaranteed to fit, so the
/// output is never silently truncated (the failure mode of fixed-size
/// snprintf buffers). Throws casvm::Error on an encoding error.
[[gnu::format(printf, 1, 2)]]
std::string formatString(const char* fmt, ...);

/// formatString appended to `out` (avoids a temporary per call site when
/// building large documents piecewise).
[[gnu::format(printf, 2, 3)]]
void appendFormat(std::string& out, const char* fmt, ...);

}  // namespace casvm
