#pragma once

/// \file table.hpp
/// Plain-text table rendering for the benchmark harnesses. Every bench in
/// bench/ prints the paper's reported rows next to the values measured in
/// this repository; TablePrinter keeps those tables aligned and uniform.

#include <string>
#include <vector>

namespace casvm {

/// Column-aligned ASCII table. Cells are strings; helpers format numbers.
class TablePrinter {
 public:
  /// Create a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  /// Render with a header rule and column padding.
  std::string render() const;

  /// Render and write to stdout.
  void print() const;

  /// Number of data rows added so far.
  std::size_t rows() const { return rows_.size(); }

  // --- formatting helpers ----------------------------------------------
  /// Fixed-point with `digits` decimals, e.g. fmt(3.14159, 2) == "3.14".
  static std::string fmt(double v, int digits = 2);
  /// Integer with thousands separators, e.g. fmtCount(30297) == "30,297".
  static std::string fmtCount(long long v);
  /// Bytes with a binary-ish unit suffix (B, KB, MB, GB), one decimal.
  static std::string fmtBytes(double bytes);
  /// Percentage with one decimal, e.g. fmtPercent(0.953) == "95.3%".
  static std::string fmtPercent(double fraction);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace casvm
