#pragma once

/// \file error.hpp
/// Error handling for the casvm library: a single exception type plus
/// CHECK-style macros. Internal invariants use CASVM_ASSERT (disabled in
/// release only if CASVM_NO_ASSERT is defined); user-facing argument
/// validation uses CASVM_CHECK and is always on.

#include <stdexcept>
#include <string>

namespace casvm {

/// Exception thrown on any casvm precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throwError(const char* file, int line, const char* expr,
                             const std::string& msg);
}  // namespace detail

}  // namespace casvm

/// Validate a user-visible precondition; throws casvm::Error on failure.
#define CASVM_CHECK(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::casvm::detail::throwError(__FILE__, __LINE__, #expr, (msg)); \
    }                                                                 \
  } while (0)

/// Internal invariant check. Same behaviour as CASVM_CHECK but reserved for
/// conditions that indicate a library bug rather than bad user input.
#ifndef CASVM_NO_ASSERT
#define CASVM_ASSERT(expr, msg) CASVM_CHECK(expr, msg)
#else
#define CASVM_ASSERT(expr, msg) ((void)0)
#endif
