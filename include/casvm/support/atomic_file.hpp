#pragma once

/// \file atomic_file.hpp
/// Crash-consistent file writes: write to a temporary sibling, fsync, then
/// rename over the destination. A reader (or a process restarted after a
/// SIGKILL) therefore observes either the previous complete file or the new
/// complete file — never a truncated in-between. Model artifacts and every
/// checkpoint generation go through this helper; see DESIGN.md §9.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace casvm::support {

/// Atomically replace `path` with `bytes`. The data is staged in a
/// temporary file in the same directory (same filesystem, so the final
/// rename is atomic), flushed to disk, and renamed into place. On any
/// failure the temporary is removed, the previous `path` content (if any)
/// is left untouched, and casvm::Error is thrown.
void writeFileAtomic(const std::string& path, std::span<const std::byte> bytes);

/// Text overload of writeFileAtomic.
void writeFileAtomic(const std::string& path, const std::string& text);

/// Whole-file read; throws casvm::Error if the file cannot be opened or a
/// short read occurs.
std::vector<std::byte> readFileBytes(const std::string& path);

}  // namespace casvm::support
