#pragma once

/// \file posix.hpp
/// EINTR-safe wrappers over the handful of POSIX calls the process
/// transport and its supervisor depend on. Signals are routine in that
/// world — SIGCHLD from dying workers, SIGKILL/SIGSTOP raised by chaos
/// faults — so every blocking syscall here retries on EINTR instead of
/// surfacing a spurious short transfer or failure to the caller.

#include <sys/types.h>

#include <cstddef>

namespace casvm::support {

/// read() exactly `len` bytes into `buf`, retrying on EINTR and resuming
/// after short reads. Returns the number of bytes read: `len` on success,
/// fewer only if EOF arrived first, and throws casvm::Error on any other
/// read error.
std::size_t readFull(int fd, void* buf, std::size_t len);

/// write() exactly `len` bytes from `buf`, retrying on EINTR and short
/// writes. Throws casvm::Error if the descriptor rejects the write (e.g.
/// EPIPE after the peer process died).
void writeFull(int fd, const void* buf, std::size_t len);

/// waitpid() retrying on EINTR. Returns the waitpid() result (pid, 0 for
/// WNOHANG-with-no-change, or -1 with errno != EINTR preserved).
pid_t waitpidRetry(pid_t pid, int* status, int options);

}  // namespace casvm::support
