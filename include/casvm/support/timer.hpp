#pragma once

/// \file timer.hpp
/// Wall-clock and per-thread CPU timers.
///
/// The per-thread CPU clock is the backbone of the virtual-time model in
/// casvm::net: on an oversubscribed machine (many simulated ranks on few
/// cores) wall-clock of a rank includes time it spent descheduled, while
/// CLOCK_THREAD_CPUTIME_ID measures only the work that rank actually did —
/// which is what a dedicated node would have spent.

#include <chrono>

namespace casvm {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// CPU seconds consumed by the calling thread since it started.
double threadCpuSeconds();

/// CPU seconds consumed by the whole process.
double processCpuSeconds();

}  // namespace casvm
