#pragma once

/// \file checksum.hpp
/// CRC32 (IEEE 802.3, polynomial 0xEDB88320) over byte spans. Used by the
/// checkpoint file format to detect truncated or corrupted artifacts before
/// any payload byte is trusted. This is an integrity check against torn
/// writes and bit rot, not an authenticity check — it does not defend
/// against a hostile writer.

#include <cstddef>
#include <cstdint>
#include <span>

namespace casvm::support {

/// CRC32 of `bytes`, optionally continuing from a previous partial value
/// (pass the previous return as `seed` to checksum a stream in chunks).
std::uint32_t crc32(std::span<const std::byte> bytes, std::uint32_t seed = 0);

}  // namespace casvm::support
