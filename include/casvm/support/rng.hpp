#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation (xoshiro256**).
/// All randomized components of casvm (partitioners, synthetic data,
/// K-means initialization) take an explicit Rng or seed so that every
/// experiment in the repository is reproducible bit-for-bit.

#include <cstdint>
#include <cmath>
#include <vector>

namespace casvm {

/// xoshiro256** generator (Blackman & Vigna). Small, fast, and good enough
/// statistical quality for data generation and sampling. Not for crypto.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface so Rng works with <algorithm>.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Sample k distinct indices from [0, n) (Floyd's algorithm).
  std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Derive an independent child generator; used to give each simulated
  /// rank its own stream from one experiment seed.
  Rng split();

 private:
  std::uint64_t s_[4];
  double cachedNormal_ = 0.0;
  bool hasCachedNormal_ = false;
};

}  // namespace casvm
