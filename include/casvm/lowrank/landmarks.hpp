#pragma once

/// \file landmarks.hpp
/// Landmark selection for the Nyström low-rank kernel backend.
///
/// A landmark set is a small subset of training rows whose kernel columns
/// span the approximation (see nystrom.hpp). Selection is deterministic in
/// the seed, so every rank of an SPMD run (and every resume of a
/// checkpointed one) picks the same landmarks.
///
/// Composition with the paper's partitioners: the partitioned methods
/// (CP-SVM, BKM/FCFS/RA CA-SVM) and the tree methods call selection on each
/// rank's *local* block, which after clustering IS one cluster — so "one
/// landmark set per cluster" falls out of the data placement. K-means++
/// seeding then spreads the landmarks over that cluster's own geometry,
/// exactly the per-cluster low-rank structure the DC-SVM analysis
/// (arXiv:1311.0914) predicts.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "casvm/data/dataset.hpp"

namespace casvm::lowrank {

enum class LandmarkStrategy : std::uint8_t {
  /// Uniform sample without replacement.
  Uniform = 0,
  /// K-means++ D² seeding: each next landmark is drawn with probability
  /// proportional to its squared distance from the chosen set. Spreads
  /// landmarks over the data's geometry; the better default.
  KmeansPP = 1,
};

std::string strategyName(LandmarkStrategy strategy);
LandmarkStrategy strategyFromName(const std::string& name);

/// Select `count` distinct landmark row indices from `ds` (ascending,
/// deterministic in `seed`). `count` is clamped to ds.rows().
std::vector<std::size_t> selectLandmarks(const data::Dataset& ds,
                                         std::size_t count,
                                         LandmarkStrategy strategy,
                                         std::uint64_t seed);

/// Landmark rows materialized as dense float vectors with cached squared
/// norms — self-contained (no Dataset reference), so a set can cross rank
/// boundaries: the global-landmark Dis-SMO path allgathers exactly these
/// fields and every rank rebuilds the identical mixing matrix from them.
struct LandmarkSet {
  std::size_t features = 0;
  std::vector<float> rows;       ///< count x features, row-major
  std::vector<double> selfDots;  ///< ||row_l||², one per landmark

  std::size_t count() const { return selfDots.size(); }
  std::span<const float> row(std::size_t l) const {
    return std::span<const float>(rows).subspan(l * features, features);
  }
};

/// Densify the given rows of `ds` into a LandmarkSet.
LandmarkSet extractLandmarks(const data::Dataset& ds,
                             std::span<const std::size_t> indices);

}  // namespace casvm::lowrank
