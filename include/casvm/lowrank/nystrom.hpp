#pragma once

/// \file nystrom.hpp
/// The Nyström low-rank factor: K ≈ Z Zᵀ with Z = K_{m,L} (K_{L,L})^{-1/2}.
///
/// Given L landmark rows, the m×L cross-kernel block K_{m,L} is filled one
/// column at a time through the tiled Kernel::rowWith path, the small L×L
/// landmark Gram matrix is eigendecomposed with deterministic cyclic Jacobi
/// sweeps, eigenpairs below a relative floor are truncated (rank r ≤ L — the
/// pseudo-inverse square root, keeping the factor finite on rank-deficient
/// landmark sets), and Z = K_{m,L} U_r Λ_r^{-1/2} is packed into the same
/// 16-row k-major float tiles the exact solver's row fills stream through.
/// An approximate kernel row is then one Z·Zᵀ tile-dot over r columns
/// instead of an exact m×n evaluation — O(m·r) with r ≪ n typical.
///
/// Determinism: selection, the Jacobi sweep order and every accumulation
/// order are fixed, so the same (dataset, options) always produces the
/// bitwise-identical factor — build-on-resume equals load-from-checkpoint.
/// The factor is symmetric and PSD by construction, which the SMO solver's
/// convergence argument needs.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "casvm/data/dataset.hpp"
#include "casvm/kernel/kernel.hpp"
#include "casvm/lowrank/landmarks.hpp"

namespace casvm::lowrank {

struct NystromOptions {
  std::size_t landmarks = 64;
  LandmarkStrategy strategy = LandmarkStrategy::KmeansPP;
  std::uint64_t seed = 42;
  /// Relative eigenvalue floor: eigenpairs of K_LL below
  /// eigenFloor * lambda_max are truncated instead of inverted, so a
  /// nearly-singular landmark Gram matrix cannot blow up (K_LL)^{-1/2}.
  double eigenFloor = 1e-10;
};

/// The materialized factor for one (dataset, kernel, landmark set).
class NystromFactor {
 public:
  NystromFactor() = default;

  /// Select landmarks from `ds` itself (per-cluster composition: on a
  /// partitioned rank, `ds` is that rank's cluster) and build the factor.
  static NystromFactor build(const kernel::Kernel& kern,
                             const data::Dataset& ds,
                             const NystromOptions& opts);

  /// Build against an explicit landmark set — possibly external to `ds`
  /// (the global-landmark Dis-SMO path allgathers one set and every rank
  /// builds its local Z against it, giving one consistent global K̃).
  static NystromFactor buildWithLandmarks(const kernel::Kernel& kern,
                                          const data::Dataset& ds,
                                          LandmarkSet landmarks,
                                          double eigenFloor);

  std::size_t rows() const { return m_; }
  /// Effective rank r ≤ landmark count after eigenvalue truncation.
  std::size_t rank() const { return r_; }
  const LandmarkSet& landmarks() const { return landmarks_; }

  // Row interface over K̃ = Z Zᵀ (the shapes RowSource needs; LowRankKernel
  // forwards to these). All three agree bitwise on shared entries and
  // K̃(i,j) == K̃(j,i) bitwise: every entry is the same serial ascending-k
  // double accumulation over the float z-rows of i and j.
  void fillRow(std::size_t i, std::span<double> out);
  void fillRowSubset(std::size_t i, std::span<const std::size_t> active,
                     std::span<double> out);
  void fillDiagonal(std::span<double> out);

  /// Map an external dense vector into z-space: z = Wᵀ k_L(x), length
  /// rank(), with k_L evaluated by `kern` (the same kernel the factor was
  /// built with). Deterministic in the bytes of x, so every rank maps a
  /// broadcast row to the identical z — the collective-safety basis of the
  /// global-landmark Dis-SMO path.
  void map(const kernel::Kernel& kern, std::span<const float> x,
           double xSelfDot, std::span<double> z) const;

  /// K̃(i, x) = z_i · z for a map()ped external vector.
  double zdot(std::size_t i, std::span<const double> z) const;

  /// Raw-bit serialization (checkpoint payload; see ckpt Kind::LowRankFactor).
  std::vector<std::byte> encode() const;
  static NystromFactor decode(std::span<const std::byte> bytes);

 private:
  std::size_t m_ = 0;  ///< rows of the training set
  std::size_t r_ = 0;  ///< effective rank
  LandmarkSet landmarks_;
  /// Mixing matrix W = U_r Λ_r^{-1/2}, L x r row-major (landmark-major).
  std::vector<double> w_;
  /// Z in 16-row k-major float tiles (blockCount(m) * r * 16 floats).
  std::vector<float> tiles_;
  /// Widened z-row scratch for fills (length r).
  std::vector<double> xd_;

  void widenRow(std::size_t i);
};

/// Eigendecomposition of a symmetric s×s matrix by deterministic cyclic
/// Jacobi sweeps (exposed for tests). `a` is row-major and is destroyed;
/// on return eigenvalues[t] with eigenvectors column t of `vectors`
/// (row-major s×s), sorted descending by eigenvalue (ties: lower original
/// column first).
void jacobiEigenSymmetric(std::vector<double>& a, std::size_t s,
                          std::vector<double>& eigenvalues,
                          std::vector<double>& vectors);

}  // namespace casvm::lowrank
