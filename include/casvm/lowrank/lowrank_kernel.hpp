#pragma once

/// \file lowrank_kernel.hpp
/// The Nyström factor behind the solver's kernel-row interface.
///
/// LowRankKernel owns a NystromFactor and implements kernel::RowSource, so
/// an SmoSolver handed one (SolverOptions::rowSource) runs its entire
/// selection / two-variable-step / gradient machinery against K̃ = Z·Zᵀ
/// without a single code change: row fills become tile-dots over r ≪ n
/// columns, the diagonal comes from the z-rows' squared norms, and partial
/// (active-set) fills agree bitwise with full fills. Model extraction still
/// uses the exact kernel over the support vectors — train-approximate,
/// predict-exact — so serving is unchanged.

#include <utility>

#include "casvm/kernel/row_source.hpp"
#include "casvm/lowrank/nystrom.hpp"

namespace casvm::lowrank {

class LowRankKernel final : public kernel::RowSource {
 public:
  explicit LowRankKernel(NystromFactor factor) : factor_(std::move(factor)) {}

  const NystromFactor& factor() const { return factor_; }
  NystromFactor& factor() { return factor_; }

  std::size_t rows() const override { return factor_.rows(); }
  void fillRow(std::size_t i, std::span<double> out) override {
    factor_.fillRow(i, out);
  }
  void fillRowSubset(std::size_t i, std::span<const std::size_t> active,
                     std::span<double> out) override {
    factor_.fillRowSubset(i, active, out);
  }
  void fillDiagonal(std::span<double> out) override {
    factor_.fillDiagonal(out);
  }
  /// Full fills stream the tile micro-kernel (same ~4x per-element edge as
  /// the exact dense path), so the partial-fill cutoff matches it.
  bool preferFullFill(std::size_t activeCount) const override {
    return activeCount * 4 >= factor_.rows();
  }

 private:
  NystromFactor factor_;
};

}  // namespace casvm::lowrank
