#pragma once

/// \file store.hpp
/// Generation-numbered checkpoint storage on a directory.
///
/// Each named checkpoint (e.g. "solver.r3") is a family of files
/// `<name>.g<N>.ckpt` with N strictly increasing. save() writes the next
/// generation atomically and then prunes all but the newest two, so one
/// older complete generation always survives a crash mid-rotation. load()
/// walks generations newest-first and returns the first frame that passes
/// every integrity check; anything corrupt (bad magic/CRC, short read) is
/// logged, counted, and skipped in favor of the previous generation —
/// a damaged checkpoint is never trusted.
///
/// One store is shared by all rank threads of a run; operations take an
/// internal lock (rank checkpoint names are disjoint, but the directory
/// scan/prune must not race).

#include <cstddef>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "casvm/ckpt/checkpoint.hpp"

namespace casvm::ckpt {

class CheckpointStore {
 public:
  /// Opens (creating if needed) the checkpoint directory.
  explicit CheckpointStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Persist `payload` as the next generation of `name`. Atomic: a crash
  /// at any point leaves either the previous generations or the previous
  /// generations plus one complete new file.
  void save(const std::string& name, Kind kind,
            std::span<const std::byte> payload);

  /// Newest valid payload of `name` with the expected kind, or nullopt if
  /// no generation survives the integrity checks. Corrupt generations are
  /// warned about and skipped.
  std::optional<std::vector<std::byte>> load(const std::string& name,
                                             Kind kind) const;

  /// Every valid payload of `name` with the expected kind, newest first —
  /// at most kKeepGenerations entries. Global methods use this to agree on
  /// a generation all ranks still hold: ranks checkpoint within one save
  /// interval of each other, so with two kept generations the allreduce-min
  /// of newest snapshot iterations exists somewhere in every rank's list.
  std::vector<std::vector<std::byte>> loadGenerations(const std::string& name,
                                                      Kind kind) const;

  /// True when at least one generation file of `name` exists (no
  /// integrity check — use load() to actually trust it).
  bool contains(const std::string& name) const;

  /// Delete every generation of `name` (e.g. a stale solver snapshot once
  /// the finished sub-model checkpoint exists).
  void remove(const std::string& name);

  /// Corrupt/truncated generation files skipped by load() so far.
  std::size_t corruptSkipped() const;

  /// Generations kept per name (newest N survive pruning).
  static constexpr std::size_t kKeepGenerations = 2;

 private:
  /// (generation, path) pairs for `name`, newest first. Caller holds the lock.
  std::vector<std::pair<std::uint64_t, std::string>> generationsOf(
      const std::string& name) const;

  std::string dir_;
  mutable std::mutex mutex_;
  mutable std::size_t corruptSkipped_ = 0;
};

}  // namespace casvm::ckpt
