#pragma once

/// \file checkpoint.hpp
/// The versioned, CRC32-guarded checkpoint frame (casvm::ckpt).
///
/// Layout (little-endian, fixed offsets):
///   bytes 0..7    magic "CASVMCKP"
///   bytes 8..11   format version (u32)
///   bytes 12..15  payload kind (u32, see Kind)
///   bytes 16..23  payload size (u64)
///   bytes 24..27  CRC32 of the payload (u32)
///   bytes 28..    payload
///
/// decodeFrame() trusts nothing: wrong magic, unknown version, a size that
/// disagrees with the file length, or a CRC mismatch all yield nullopt —
/// never a partially decoded frame. Combined with the atomic-rename write
/// path (casvm::support::writeFileAtomic) this makes a checkpoint either
/// whole and verified or worthless-and-detected; see DESIGN.md §9.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace casvm::ckpt {

/// What a checkpoint payload contains. Stored in the frame so a reader can
/// never misinterpret (say) a partition snapshot as solver state.
enum class Kind : std::uint32_t {
  Meta = 1,         ///< run fingerprint (config + dataset identity)
  Partition = 2,    ///< a rank's partitioned data + routing center
  SolverState = 3,  ///< mid-solve SMO snapshot
  SubModel = 4,     ///< a completed per-rank sub-model (partitioned methods)
  TreeLayer = 5,    ///< a completed tree layer's merged/filtered output
  DisSmoState = 6,  ///< a rank's mid-solve Dis-SMO state (alpha/f/active)
  PbmRound = 7,     ///< a rank's PBM state at the top of an outer round
  LowRankFactor = 8,  ///< a rank's Nyström factor (casvm::lowrank)
};

inline constexpr std::uint32_t kFormatVersion = 1;

/// Frame `payload` for durable storage.
std::vector<std::byte> encodeFrame(Kind kind, std::span<const std::byte> payload);

struct Frame {
  Kind kind{};
  std::vector<std::byte> payload;
};

/// Parse and verify a frame; nullopt on any corruption or truncation.
std::optional<Frame> decodeFrame(std::span<const std::byte> bytes);

}  // namespace casvm::ckpt
