#pragma once

/// \file state.hpp
/// Payload codecs for the training-state checkpoint kinds.
///
/// Every encode/decode pair is exact: doubles travel as their raw bit
/// patterns and datasets through Dataset::pack/unpack, so restoring a
/// snapshot reproduces the interrupted computation bitwise (the resume
/// property test depends on this). Decoders assume the payload already
/// passed the frame CRC — a decode failure therefore indicates a version
/// or logic bug and throws casvm::Error instead of returning nullopt.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "casvm/data/dataset.hpp"
#include "casvm/solver/model.hpp"
#include "casvm/solver/smo.hpp"

namespace casvm::ckpt {

/// Identity of a training run: a resume against a checkpoint directory
/// written by a different config/dataset must be rejected, not silently
/// blended into nonsense.
struct RunMeta {
  std::uint64_t fingerprint = 0;  ///< hash of config + dataset identity
  std::uint32_t method = 0;       ///< core::Method as an integer
  std::uint32_t processes = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
};

std::vector<std::byte> encodeMeta(const RunMeta& meta);
RunMeta decodeMeta(std::span<const std::byte> payload);

/// A rank's slice of the partitioned data plus its routing center —
/// everything needed to skip the collective partition phase on resume.
struct PartitionState {
  data::Dataset local;
  std::vector<float> center;
  std::uint64_t kmeansLoops = 0;
};

std::vector<std::byte> encodePartition(const PartitionState& state);
PartitionState decodePartition(std::span<const std::byte> payload);

std::vector<std::byte> encodeSolverState(const solver::SolverSnapshot& snap);
solver::SolverSnapshot decodeSolverState(std::span<const std::byte> payload);

/// A rank's mid-solve Dis-SMO state. Same payload shape as a solver
/// snapshot (global iteration, whether shrinking ever engaged, local
/// alpha/f, local active set) but under its own Kind so a global-method
/// resume can never misread a partitioned run's solver file. The
/// replicated elected-row cache is deliberately not saved: rebuilding it
/// from scratch changes only communication volume, never the trajectory.
std::vector<std::byte> encodeDisSmoState(const solver::SolverSnapshot& snap);
solver::SolverSnapshot decodeDisSmoState(std::span<const std::byte> payload);

/// A rank's PBM state at the top of an outer round: the round number, the
/// iteration tallies accumulated so far, and the local alpha/f slices.
struct PbmRoundState {
  std::uint64_t round = 0;
  long long blockIterations = 0;
  long long pairIterations = 0;
  std::vector<double> alpha;
  std::vector<double> f;
};

std::vector<std::byte> encodePbmRound(const PbmRoundState& state);
PbmRoundState decodePbmRound(std::span<const std::byte> payload);

/// A finished per-rank sub-model (partitioned methods): the board deposits
/// a crashed-then-resumed run would otherwise lose.
struct SubModelState {
  solver::Model model;
  long long iterations = 0;
  long long svs = 0;
};

std::vector<std::byte> encodeSubModel(const SubModelState& state);
SubModelState decodeSubModel(std::span<const std::byte> payload);

/// One completed tree layer on one rank: the filtered output that feeds
/// the next merge, plus the layer's stats record and (at the final layer)
/// the finished model.
struct TreeLayerState {
  std::int64_t layer = 0;  ///< global layer index ((pass-1)*layers + layer)
  data::Dataset current;
  std::vector<double> currentAlpha;
  long long samples = 0;
  long long iterations = 0;
  long long svs = 0;
  double seconds = 0.0;
  std::optional<solver::Model> model;  ///< set at the final layer only
};

std::vector<std::byte> encodeTreeLayer(const TreeLayerState& state);
TreeLayerState decodeTreeLayer(std::span<const std::byte> payload);

}  // namespace casvm::ckpt
