#pragma once

/// \file row_source.hpp
/// Where kernel matrix rows come from.
///
/// The SMO solver consumes the kernel matrix exclusively through row and
/// diagonal fills (see row_cache.hpp). RowSource abstracts the producer of
/// those fills so the solver can run against either the exact kernel
/// (ExactRowSource — tiled dot products over the training data) or an
/// approximation that exposes the same row interface, such as the Nyström
/// low-rank factor in casvm::lowrank whose rows are Z·Zᵀ tile-dots.
///
/// Contract every implementation must honor (the solver depends on it):
///  - fillRow(i, out)[j], fillRowSubset(i, active, out)[j in active] and
///    fillDiagonal(out)[i==j] agree bitwise for the same (i, j) — a row
///    refilled partially after a full fill must reproduce the same values;
///  - fills are deterministic: the same i always produces the same row.

#include <cstddef>
#include <span>

#include "casvm/data/dataset.hpp"
#include "casvm/kernel/kernel.hpp"

namespace casvm::kernel {

/// Producer of kernel matrix rows for one training set. Not thread-safe;
/// each solver instance owns (or is handed) its own source.
class RowSource {
 public:
  virtual ~RowSource() = default;

  /// Number of rows (== columns) of the kernel matrix.
  virtual std::size_t rows() const = 0;

  /// out[j] = K(i, j) for all j; out.size() == rows().
  virtual void fillRow(std::size_t i, std::span<double> out) = 0;

  /// out[j] = K(i, j) for j in `active` only (ascending indices); entries
  /// outside `active` are left untouched.
  virtual void fillRowSubset(std::size_t i,
                             std::span<const std::size_t> active,
                             std::span<double> out) = 0;

  /// out[j] = K(j, j) for all j.
  virtual void fillDiagonal(std::span<double> out) = 0;

  /// True when a full-row fill is expected to beat a subset fill of
  /// `activeCount` entries (the row cache's partial-fill cutoff).
  virtual bool preferFullFill(std::size_t activeCount) const = 0;
};

/// The exact kernel: rows are storage-aware blocked dot products over the
/// training data (dense: the tiled AVX2/portable micro-kernel through an
/// owned RowWorkspace; sparse: CSR streams). This is the historical row
/// producer factored out of RowCache; results are bitwise-identical to
/// Kernel::eval per element.
class ExactRowSource final : public RowSource {
 public:
  ExactRowSource(const Kernel& kernel, const data::Dataset& ds)
      : kernel_(kernel), ds_(ds) {}

  std::size_t rows() const override { return ds_.rows(); }
  void fillRow(std::size_t i, std::span<double> out) override {
    kernel_.row(ds_, i, out, workspace_);
  }
  void fillRowSubset(std::size_t i, std::span<const std::size_t> active,
                     std::span<double> out) override {
    kernel_.row(ds_, i, active, out, workspace_);
  }
  void fillDiagonal(std::span<double> out) override {
    kernel_.diagonal(ds_, out);
  }
  /// For dense storage the full-row fill runs through the tiled micro-kernel
  /// (~5x the per-element speed of the scalar subset fill), so a partial fill
  /// only pays off once the active set has shrunk well below the row length.
  /// Sparse subset fills stream just the active rows' nonzeros and always win.
  bool preferFullFill(std::size_t activeCount) const override {
    return ds_.storage() == data::Storage::Dense &&
           activeCount * 4 >= ds_.rows();
  }

 private:
  const Kernel& kernel_;
  const data::Dataset& ds_;
  /// Fill accelerator (blocked matrix copy + scratch); lives as long as the
  /// source so its one-time build cost amortizes over every fill.
  RowWorkspace workspace_;
};

}  // namespace casvm::kernel
