#pragma once

/// \file kernel.hpp
/// SVM kernel functions (the paper's Table I): linear, polynomial,
/// Gaussian (RBF) and sigmoid, evaluated over Dataset rows or external
/// dense vectors. The Gaussian kernel is the paper's primary case — its
/// locality (K -> 0 as distance grows) is the analytical basis for
/// CP-SVM/CA-SVM partition-and-solve correctness (§IV-A).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "casvm/data/dataset.hpp"

namespace casvm::kernel {

enum class KernelType : std::uint8_t {
  Linear = 0,      ///< K(x, z) = x.z
  Polynomial = 1,  ///< K(x, z) = (a x.z + r)^d
  Gaussian = 2,    ///< K(x, z) = exp(-gamma ||x - z||^2)
  Sigmoid = 3,     ///< K(x, z) = tanh(a x.z + r)
};

/// Parameters for every kernel family; unused fields are ignored.
struct KernelParams {
  KernelType type = KernelType::Gaussian;
  double gamma = 1.0;  ///< Gaussian width
  double a = 1.0;      ///< polynomial / sigmoid scale
  double r = 0.0;      ///< polynomial / sigmoid offset
  int degree = 3;      ///< polynomial degree

  static KernelParams linear() { return {KernelType::Linear, 0, 0, 0, 0}; }
  static KernelParams gaussian(double gamma) {
    return {KernelType::Gaussian, gamma, 0, 0, 0};
  }
  static KernelParams polynomial(double a, double r, int degree) {
    return {KernelType::Polynomial, 0, a, r, degree};
  }
  static KernelParams sigmoid(double a, double r) {
    return {KernelType::Sigmoid, 0, a, r, 0};
  }
};

/// Human-readable kernel name ("gaussian", ...).
std::string kernelName(KernelType type);

/// Reusable scratch that accelerates repeated Kernel::row() fills over one
/// dataset. For dense data it holds a blocked, column-interleaved (k-major,
/// 16 rows per block) float copy of the sample matrix, built once on first
/// bind: row fills then run unit-stride load / convert / multiply-add
/// streams with no per-fill transposition. It also owns the conversion and
/// scatter buffers the fill kernels need, so fills allocate nothing.
///
/// Bound to one dataset at a time; binding a different dataset rebuilds the
/// blocked copy (one full row fill's worth of work). Not thread-safe — each
/// RowCache owns its own workspace.
class RowWorkspace {
 public:
  RowWorkspace() = default;

  /// Prepare for fills over `ds`; a no-op when already bound to it.
  void bind(const data::Dataset& ds);

 private:
  friend class Kernel;
  const data::Dataset* bound_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> tiles_;    ///< dense: ceil(m/16) blocks of cols*16 floats
  std::vector<double> xd_;      ///< dense: row i widened to double
  std::vector<float> scatter_;  ///< sparse: dense copy of row i
};

/// Kernel evaluator bound to parameters (not to a dataset).
class Kernel {
 public:
  explicit Kernel(KernelParams params) : params_(params) {}

  const KernelParams& params() const { return params_; }

  /// K(xi, xj) within one dataset.
  double eval(const data::Dataset& ds, std::size_t i, std::size_t j) const;

  /// K(xi, x) against an external dense vector with precomputed ||x||^2.
  double evalWith(const data::Dataset& ds, std::size_t i,
                  std::span<const float> x, double xSelfDot) const;

  /// K(ai, bj) across two datasets with identical feature counts.
  double evalCross(const data::Dataset& a, std::size_t i,
                   const data::Dataset& b, std::size_t j) const;

  /// K(x, z) for two external dense vectors with precomputed norms.
  double evalVectors(std::span<const float> x, double xSelfDot,
                     std::span<const float> z, double zSelfDot) const;

  /// Fill out[j] = K(xi, xj) for all j (one kernel row). Uses blocked,
  /// storage-aware dot-product kernels (8-row dense blocks; sparse rows via
  /// a scattered dense copy of row i) and applies the kernel transform in a
  /// single pass per row, so the KernelType switch runs once per row rather
  /// than once per element. Bitwise-identical to calling eval per element.
  void row(const data::Dataset& ds, std::size_t i, std::span<double> out) const;

  /// row() accelerated by a caller-owned workspace: dense fills run over
  /// the workspace's blocked matrix copy through a runtime-dispatched
  /// (AVX2 when available) micro-kernel, sparse fills reuse its scatter
  /// buffer. Results are bitwise-identical to the workspace-free overload —
  /// every row accumulates serially over ascending k into one double.
  void row(const data::Dataset& ds, std::size_t i, std::span<double> out,
           RowWorkspace& ws) const;

  /// Fill out[j] = K(xi, xj) for j in `subset` only; entries of `out`
  /// outside `subset` are left untouched. Lets the solver's row cache
  /// refill evicted rows over the active set while shrinking instead of
  /// paying a full-m row computation.
  void row(const data::Dataset& ds, std::size_t i,
           std::span<const std::size_t> subset, std::span<double> out) const;

  /// Subset row() with a workspace (reuses its scatter buffer for sparse
  /// data); bitwise-identical to the workspace-free subset overload.
  void row(const data::Dataset& ds, std::size_t i,
           std::span<const std::size_t> subset, std::span<double> out,
           RowWorkspace& ws) const;

  /// Fill out[j] = K(xj, x) for all j against an external dense vector x
  /// with precomputed ||x||^2 — a whole-column evaluation of evalWith().
  /// Dense fills stream through the workspace's blocked matrix copy with
  /// the same tile micro-kernel as row(); sparse fills run each row's
  /// nonzeros against x. Bitwise-identical to calling evalWith per row.
  /// The low-rank backend uses this to materialize K(:, landmark) columns.
  void rowWith(const data::Dataset& ds, std::span<const float> x,
               double xSelfDot, std::span<double> out, RowWorkspace& ws) const;

  /// Fill out[j] = K(xj, xj) for all j from the dataset's cached squared
  /// norms — no dot products. The SMO second-order working-set selection
  /// reads the kernel diagonal for every candidate on every iteration;
  /// computing it once here replaces an O(active * n) per-iteration cost
  /// with an O(1) lookup. Bitwise-identical to eval(ds, j, j).
  void diagonal(const data::Dataset& ds, std::span<double> out) const;

  /// Approximate flops for one kernel evaluation (used for modeling).
  double flopsPerEval(const data::Dataset& ds) const;

 private:
  double fromDot(double dot, double selfI, double selfJ) const;

  /// Apply the kernel transform in place over a row of raw dot products
  /// (one KernelType dispatch per row, not per element).
  void transformRow(const data::Dataset& ds, std::size_t i,
                    std::span<double> out) const;
  void transformSubset(const data::Dataset& ds, std::size_t i,
                       std::span<const std::size_t> subset,
                       std::span<double> out) const;

  KernelParams params_;
};

}  // namespace casvm::kernel
