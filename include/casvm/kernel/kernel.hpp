#pragma once

/// \file kernel.hpp
/// SVM kernel functions (the paper's Table I): linear, polynomial,
/// Gaussian (RBF) and sigmoid, evaluated over Dataset rows or external
/// dense vectors. The Gaussian kernel is the paper's primary case — its
/// locality (K -> 0 as distance grows) is the analytical basis for
/// CP-SVM/CA-SVM partition-and-solve correctness (§IV-A).

#include <cstdint>
#include <span>
#include <string>

#include "casvm/data/dataset.hpp"

namespace casvm::kernel {

enum class KernelType : std::uint8_t {
  Linear = 0,      ///< K(x, z) = x.z
  Polynomial = 1,  ///< K(x, z) = (a x.z + r)^d
  Gaussian = 2,    ///< K(x, z) = exp(-gamma ||x - z||^2)
  Sigmoid = 3,     ///< K(x, z) = tanh(a x.z + r)
};

/// Parameters for every kernel family; unused fields are ignored.
struct KernelParams {
  KernelType type = KernelType::Gaussian;
  double gamma = 1.0;  ///< Gaussian width
  double a = 1.0;      ///< polynomial / sigmoid scale
  double r = 0.0;      ///< polynomial / sigmoid offset
  int degree = 3;      ///< polynomial degree

  static KernelParams linear() { return {KernelType::Linear, 0, 0, 0, 0}; }
  static KernelParams gaussian(double gamma) {
    return {KernelType::Gaussian, gamma, 0, 0, 0};
  }
  static KernelParams polynomial(double a, double r, int degree) {
    return {KernelType::Polynomial, 0, a, r, degree};
  }
  static KernelParams sigmoid(double a, double r) {
    return {KernelType::Sigmoid, 0, a, r, 0};
  }
};

/// Human-readable kernel name ("gaussian", ...).
std::string kernelName(KernelType type);

/// Kernel evaluator bound to parameters (not to a dataset).
class Kernel {
 public:
  explicit Kernel(KernelParams params) : params_(params) {}

  const KernelParams& params() const { return params_; }

  /// K(xi, xj) within one dataset.
  double eval(const data::Dataset& ds, std::size_t i, std::size_t j) const;

  /// K(xi, x) against an external dense vector with precomputed ||x||^2.
  double evalWith(const data::Dataset& ds, std::size_t i,
                  std::span<const float> x, double xSelfDot) const;

  /// K(ai, bj) across two datasets with identical feature counts.
  double evalCross(const data::Dataset& a, std::size_t i,
                   const data::Dataset& b, std::size_t j) const;

  /// K(x, z) for two external dense vectors with precomputed norms.
  double evalVectors(std::span<const float> x, double xSelfDot,
                     std::span<const float> z, double zSelfDot) const;

  /// Fill out[j] = K(xi, xj) for all j (one kernel row).
  void row(const data::Dataset& ds, std::size_t i, std::span<double> out) const;

  /// Approximate flops for one kernel evaluation (used for modeling).
  double flopsPerEval(const data::Dataset& ds) const;

 private:
  double fromDot(double dot, double selfI, double selfJ) const;

  KernelParams params_;
};

}  // namespace casvm::kernel
