#pragma once

/// \file tile_kernel.hpp
/// The blocked tile-dot micro-kernel behind RowWorkspace-accelerated row
/// fills, exposed so other subsystems (the serve engine's compiled models)
/// can score against the same 16-row k-major float tiling the solver uses.
///
/// Layout: tiles[block][k][0..15] holds column k of rows 16*block ..
/// 16*block+15 (tail block zero-padded). One dot pass needs no
/// transposition — per k it broadcasts xd[k] and streams 16 contiguous
/// floats — and every output row accumulates serially over ascending k into
/// a single double, so the sums are bitwise-identical to Dataset::dot /
/// Dataset::dotWith against the same row bytes (multiplies and adds are
/// kept separate; no FMA contraction).

#include <cstddef>
#include <vector>

#include "casvm/data/dataset.hpp"

namespace casvm::kernel::tile {

/// Rows per block of the tiled layout.
inline constexpr std::size_t kRows = 16;

/// Number of 16-row blocks needed for m rows.
inline constexpr std::size_t blockCount(std::size_t m) {
  return (m + kRows - 1) / kRows;
}

/// Pack the dense rows of `ds` into the blocked k-major layout
/// (blockCount(rows) * cols * kRows floats, tail block zero-padded).
/// Only valid for Storage::Dense.
void pack(const data::Dataset& ds, std::vector<float>& tiles);

/// out[j] = sum_k xd[k] * tiles(j, k) for j in [0, m). `xd` has n entries;
/// accumulation per row is serial over ascending k into one double.
using DotFn = void (*)(const float* tiles, const double* xd, std::size_t m,
                       std::size_t n, double* out);

/// Runtime-dispatched implementation (AVX2 when the CPU supports it,
/// portable otherwise). Both produce bitwise-identical sums.
DotFn dotFn();

}  // namespace casvm::kernel::tile
