#pragma once

/// \file row_cache.hpp
/// LRU cache of kernel matrix rows.
///
/// SMO touches two kernel rows per iteration (the high and low working-set
/// samples); a small LRU over full rows captures the strong temporal reuse
/// of frequently re-selected working-set members without materializing the
/// m x m kernel matrix (LIBSVM uses the same strategy).
///
/// Rows are produced by a RowSource (see row_source.hpp): the exact kernel
/// by default, or a low-rank approximation with the same row interface.
///
/// Pinning contract: the solver holds spans to at most two rows of one
/// iteration simultaneously. It pins each row right after fetching it and
/// unpins both before the next fetch; a pinned row is never evicted, so an
/// eviction can never recycle a live span's backing vector. In debug builds
/// every fill also bumps a per-slot generation counter, and checkLive()
/// asserts that a captured (row, generation) pair is still the cached one —
/// turning silent use-after-evict bugs into immediate failures.
///
/// While the solver is shrinking, rows can be fetched with the active index
/// set: evicted-row refills then compute only the active entries (a partial
/// fill), so shrunk runs stop paying full-m row computations. Partial fills
/// are invalidated wholesale by invalidatePartial() when the active set
/// grows back (unshrink), because a partial row is only valid for index
/// sets that are subsets of the one it was filled with.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "casvm/data/dataset.hpp"
#include "casvm/kernel/kernel.hpp"
#include "casvm/kernel/row_source.hpp"

namespace casvm::kernel {

/// Caches rows of the kernel matrix of one dataset.
/// Not thread-safe; each solver instance owns its cache.
class RowCache {
 public:
  /// Cache over the exact kernel of `ds`. `budgetBytes` bounds the cached
  /// data (each row is rows()*8 bytes); at least TWO row slots are always
  /// granted, because SMO holds spans to the high and low rows of one
  /// iteration simultaneously.
  RowCache(const Kernel& kernel, const data::Dataset& ds,
           std::size_t budgetBytes);

  /// Cache over an arbitrary row producer (exact or low-rank); `source`
  /// must outlive the cache.
  RowCache(RowSource& source, std::size_t budgetBytes);

  /// Kernel row i (length = dataset rows); computed on miss, LRU-evicted.
  /// The span stays valid until its row is evicted; pinned rows are never
  /// evicted. A cached partial fill of row i is upgraded to a full row
  /// (counted as a miss).
  std::span<const double> row(std::size_t i);

  /// Kernel row i for reads restricted to `active` (ascending solver
  /// active-set indices). On a miss only the active entries are computed;
  /// entries outside `active` are unspecified. Valid until eviction or
  /// invalidatePartial(); `active` must be a subset of the index set the
  /// row was last filled with (guaranteed while the solver only shrinks).
  std::span<const double> row(std::size_t i,
                              std::span<const std::size_t> active);

  /// Pin row i (must be currently cached): excluded from eviction until
  /// unpinned. Pins nest.
  void pin(std::size_t i);
  void unpin(std::size_t i);

  /// Drop every partial fill (full rows stay). Call when the solver's
  /// active set grows back to the full problem (unshrink); stale partial
  /// rows from an earlier shrink phase would otherwise serve garbage for
  /// indices they never computed.
  void invalidatePartial();

  /// Generation of the cached row i; bumped every time the slot holding i
  /// is (re)filled. Returns 0 when i is not cached. Capture after row() and
  /// pass to checkLive() to assert a span is still backed by live storage.
  std::uint64_t generation(std::size_t i) const;

  /// Debug-mode use-after-evict tripwire: asserts row i is still cached
  /// with generation `gen`. Compiled out under CASVM_NO_ASSERT.
  void checkLive(std::size_t i, std::uint64_t gen) const;

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t capacityRows() const { return capacityRows_; }
  std::size_t pinnedRows() const { return pinned_; }
  /// Misses served by a partial (active-set-only) fill.
  std::size_t partialFills() const { return partialFills_; }

 private:
  struct Slot {
    std::size_t rowIndex;
    std::vector<double> values;
    int pins = 0;
    bool partial = false;
    std::uint64_t generation = 0;
  };

  /// Slot to (re)fill for a miss on row i: the least-recently-used unpinned
  /// slot when at capacity, a fresh slot otherwise. The returned slot is
  /// indexed under i and moved to the front of the LRU list.
  Slot& claimSlot(std::size_t i);

  /// Backing storage for the legacy (Kernel, Dataset) constructor.
  std::unique_ptr<ExactRowSource> ownedExact_;
  RowSource* src_;
  std::size_t capacityRows_;
  std::list<Slot> lru_;  // front = most recent
  std::unordered_map<std::size_t, std::list<Slot>::iterator> index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t partialFills_ = 0;
  std::size_t pinned_ = 0;
  std::uint64_t nextGeneration_ = 1;
};

}  // namespace casvm::kernel
