#pragma once

/// \file row_cache.hpp
/// LRU cache of kernel matrix rows.
///
/// SMO touches two kernel rows per iteration (the high and low working-set
/// samples); a small LRU over full rows captures the strong temporal reuse
/// of frequently re-selected working-set members without materializing the
/// m x m kernel matrix (LIBSVM uses the same strategy).

#include <cstddef>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "casvm/data/dataset.hpp"
#include "casvm/kernel/kernel.hpp"

namespace casvm::kernel {

/// Caches rows of the kernel matrix of one dataset.
/// Not thread-safe; each solver instance owns its cache.
class RowCache {
 public:
  /// `budgetBytes` bounds the cached data (each row is rows()*8 bytes);
  /// at least TWO row slots are always granted, because SMO holds spans to
  /// the high and low rows of one iteration simultaneously — a single slot
  /// would let the second fetch recycle the first span's storage.
  RowCache(const Kernel& kernel, const data::Dataset& ds,
           std::size_t budgetBytes);

  /// Kernel row i (length = dataset rows); computed on miss, LRU-evicted.
  /// The span stays valid until its row is evicted: with a capacity of C
  /// rows, the C most recently touched rows are live.
  std::span<const double> row(std::size_t i);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t capacityRows() const { return capacityRows_; }

 private:
  struct Slot {
    std::size_t rowIndex;
    std::vector<double> values;
  };

  const Kernel& kernel_;
  const data::Dataset& ds_;
  std::size_t capacityRows_;
  std::list<Slot> lru_;  // front = most recent
  std::unordered_map<std::size_t, std::list<Slot>::iterator> index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace casvm::kernel
