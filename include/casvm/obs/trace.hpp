#pragma once

/// \file trace.hpp
/// Low-overhead run tracing: per-thread event lanes merged into one
/// recorder, exported as Chrome trace_event JSON.
///
/// The design goal is that instrumentation is free when nobody is looking:
/// every producer holds a `Lane*` that is nullptr by default, and every
/// record site is guarded by that single pointer test. When a recorder is
/// attached, each rank (or serve worker) writes into its own Lane with no
/// synchronization — a lane is owned by exactly one thread for the duration
/// of the run, and the recorder only walks the lanes after the producing
/// threads have joined. addLane() itself is mutex-guarded (it is called
/// from the engine setup path, never from a hot loop) and hands out
/// pointer-stable lanes.
///
/// Span taxonomy (see DESIGN.md §8):
///  - Cat::Comm   — one span per top-level communication op (send, recv,
///                  bcast, reduce, allreduce, gather, scatterv, alltoallv,
///                  barrier, ...) with peer/root and bytes moved. Nested
///                  ops (a collective's internal point-to-point messages)
///                  are folded into the enclosing span, so summing a
///                  lane's comm spans never double-counts.
///  - Cat::Phase  — algorithm phases (partition, scatter, solve, merge);
///                  `detail` carries the tree layer where applicable.
///  - Cat::Solver — periodic instant events from the SMO hot loop
///                  (iteration, active-set size, gap, cache hit rate).
///  - Cat::Serve  — one span per scored micro-batch in the serving engine.
///
/// Timestamps are whatever clock the producer uses: virtual seconds for
/// training ranks (so the timeline matches the paper's cost model), real
/// seconds since engine start for serve workers. Each lane gets its own
/// pid in the Chrome export, so the timelines never mix.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace casvm::obs {

/// Event category (maps to the Chrome trace "cat" field).
enum class Cat : std::uint8_t { Comm = 0, Phase = 1, Solver = 2, Serve = 3 };

const char* catName(Cat cat);

/// One recorded span or instant. `name` must be a string literal (or
/// otherwise outlive the recorder): lanes store the pointer, not a copy,
/// so recording never allocates for the name.
struct Event {
  const char* name = "";
  Cat cat = Cat::Comm;
  bool instant = false;
  double startSeconds = 0.0;
  double endSeconds = 0.0;
  std::int64_t peer = -1;    ///< peer/root rank of a comm op; -1 = n/a
  std::int64_t bytes = -1;   ///< bytes moved during the span; -1 = n/a
  std::int64_t detail = -1;  ///< tree layer / batch rows / ...; -1 = n/a
  std::int64_t iter = -1;    ///< solver iteration (progress events)
  std::int64_t active = -1;  ///< solver active-set size (progress events)
  double gap = 0.0;          ///< solver KKT gap bLow - bHigh
  double hitRate = 0.0;      ///< kernel row-cache hit rate in [0, 1]

  double durationSeconds() const { return endSeconds - startSeconds; }
};

/// One thread's event buffer. Writes are single-threaded by contract
/// (one lane per producing thread); reads happen after the producer joined.
class Lane {
 public:
  Lane(int pid, int tid, std::string name)
      : pid_(pid), tid_(tid), name_(std::move(name)) {
    events_.reserve(256);
  }

  Lane(const Lane&) = delete;
  Lane& operator=(const Lane&) = delete;

  /// Record a complete span [startSeconds, endSeconds].
  void span(const char* name, Cat cat, double startSeconds, double endSeconds,
            std::int64_t peer = -1, std::int64_t bytes = -1,
            std::int64_t detail = -1) {
    Event e;
    e.name = name;
    e.cat = cat;
    e.startSeconds = startSeconds;
    e.endSeconds = endSeconds;
    e.peer = peer;
    e.bytes = bytes;
    e.detail = detail;
    events_.push_back(e);
  }

  /// Record a solver progress instant.
  void progress(double atSeconds, std::int64_t iter, std::int64_t active,
                double gap, double hitRate) {
    Event e;
    e.name = "progress";
    e.cat = Cat::Solver;
    e.instant = true;
    e.startSeconds = atSeconds;
    e.endSeconds = atSeconds;
    e.iter = iter;
    e.active = active;
    e.gap = gap;
    e.hitRate = hitRate;
    events_.push_back(e);
  }

  /// Append a fully populated event (shard absorption; `e.name` must
  /// outlive the recorder like every other name).
  void record(const Event& e) { events_.push_back(e); }

  int pid() const { return pid_; }
  int tid() const { return tid_; }
  const std::string& name() const { return name_; }
  const std::vector<Event>& events() const { return events_; }

 private:
  int pid_;
  int tid_;
  std::string name_;
  std::vector<Event> events_;
};

/// Owns the lanes of one traced run and renders them after the fact.
/// Thread-safe for addLane(); the query/export methods must only be called
/// once every producing thread has stopped recording.
class TraceRecorder {
 public:
  /// Create a lane; the returned reference stays valid for the recorder's
  /// lifetime. In the Chrome export `pid` groups lanes into one process
  /// row (one pid per rank; serve workers share a dedicated pid) and
  /// `name` labels it.
  Lane& addLane(int pid, int tid, std::string name);

  std::size_t laneCount() const;
  const Lane& lane(std::size_t i) const;

  /// Total events across all lanes.
  std::size_t eventCount() const;

  /// Number of spans of `cat` recorded under `pid` (all lanes).
  std::size_t spanCount(int pid, Cat cat) const;

  /// Sum of Cat::Comm span durations recorded under `pid`. Because nested
  /// comm ops never produce their own top-level spans, this is directly
  /// comparable to the rank's VirtualClock commSeconds().
  double commSeconds(int pid) const;

  /// The full trace as Chrome trace_event JSON ({"traceEvents": [...]},
  /// loadable in chrome://tracing or https://ui.perfetto.dev). Timestamps
  /// are exported in microseconds.
  std::string chromeTraceJson() const;

  /// chromeTraceJson() written to `path`; throws casvm::Error on IO failure.
  void writeChromeTrace(const std::string& path) const;

  /// Serialize every lane and event into a flat, self-describing byte
  /// blob. This is how per-process trace shards cross the process
  /// boundary on the proc transport: each worker encodes its local
  /// recorder and the supervisor absorbs the shards into the run's
  /// recorder.
  std::vector<std::byte> encodeShard() const;

  /// Append the lanes of an encoded shard to this recorder. Event names
  /// are re-interned into recorder-owned storage (the shard's `name`
  /// pointers belonged to another process); malformed input throws
  /// casvm::Error.
  void absorbShard(const std::vector<std::byte>& shard);

 private:
  /// Recorder-owned copy of `name`, deduplicated; valid for the
  /// recorder's lifetime, satisfying Event::name's contract.
  const char* intern(const std::string& name);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<std::string>> interned_;
};

}  // namespace casvm::obs
