#pragma once

/// \file metrics.hpp
/// Compact end-of-run metrics report: the per-rank compute/comm/wait
/// breakdown plus per-phase traffic deltas, exportable as JSON.
///
/// The report holds plain numbers only, so casvm::obs stays independent of
/// casvm::net — the caller (casvm-train, benches) assembles it from
/// RunStats, TrafficSnapshot::since deltas and the TraceRecorder it owns.

#include <cstdint>
#include <string>
#include <vector>

namespace casvm::obs {

/// One rank's time breakdown. `commSeconds` is the virtual-clock value
/// (modeled transfer + wait); `waitSeconds` is the wait component alone;
/// `traceCommSeconds` is the same quantity re-derived from the rank's
/// top-level comm spans — the cross-check casvm-train and bench_fig09 use.
struct RankMetrics {
  int rank = 0;
  double computeSeconds = 0.0;
  double commSeconds = 0.0;
  double waitSeconds = 0.0;
  double traceCommSeconds = 0.0;
  std::uint64_t commSpans = 0;
};

/// Traffic attributed to one algorithm phase (from TrafficSnapshot::since).
struct PhaseTraffic {
  std::string phase;
  std::uint64_t bytes = 0;
  std::uint64_t ops = 0;
};

/// Fault and recovery summary of a run (filled from TrainResult's
/// casvm::ckpt bookkeeping). `recoveredRanks` lists ranks that crashed but
/// were brought back by in-run retry — they are covered and never appear in
/// `failedRanks`.
struct RecoveryMetrics {
  bool degraded = false;
  bool resumed = false;
  std::uint64_t checkpointsLoaded = 0;
  std::vector<int> failedRanks;
  std::vector<int> recoveredRanks;
  std::vector<int> retriesPerRank;
};

struct MetricsReport {
  int ranks = 0;
  double wallSeconds = 0.0;
  std::vector<RankMetrics> perRank;
  std::vector<PhaseTraffic> phases;
  std::uint64_t traceEvents = 0;
  RecoveryMetrics recovery;

  /// Pretty-printed JSON object with every field above.
  std::string toJson() const;

  /// toJson() written to `path`; throws casvm::Error on IO failure.
  void writeFile(const std::string& path) const;
};

}  // namespace casvm::obs
