#pragma once

/// \file traffic.hpp
/// Per-edge communication accounting. Every byte that moves through a
/// casvm::net::Comm is recorded here, which is what lets the benchmarks
/// reproduce the paper's Table X (communication volume), Table XI
/// (bytes per operation) and Fig. 8 (P x P communication pattern) from a
/// real execution rather than from estimates.

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace casvm::net {

/// Immutable copy of a TrafficMatrix at a point in time.
struct TrafficSnapshot {
  int size = 0;                    ///< number of ranks
  std::vector<std::size_t> bytes;  ///< row-major P x P byte counts
  std::vector<std::size_t> ops;    ///< row-major P x P message counts

  std::size_t bytesBetween(int src, int dst) const;
  std::size_t opsBetween(int src, int dst) const;
  std::size_t totalBytes() const;
  std::size_t totalOps() const;
  /// Total bytes sent by `rank` plus received by `rank`.
  std::size_t bytesTouching(int rank) const;
  /// Mean message size in bytes; 0 when no messages were sent.
  double bytesPerOp() const;
  /// Render the P x P byte matrix as an aligned text grid (Fig. 8 view).
  std::string heatmap() const;
  /// Difference (this - earlier), entry-wise; sizes must match.
  TrafficSnapshot since(const TrafficSnapshot& earlier) const;
};

/// Thread-safe P x P traffic counter shared by all ranks of an Engine run.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(int size);

  /// Record one message of `bytes` payload bytes from src to dst.
  void record(int src, int dst, std::size_t bytes);

  /// Zero all counters.
  void reset();

  int size() const { return size_; }

  /// Copy the counters into a plain, immutable snapshot.
  TrafficSnapshot snapshot() const;

 private:
  int size_;
  std::unique_ptr<std::atomic<std::size_t>[]> bytes_;
  std::unique_ptr<std::atomic<std::size_t>[]> ops_;
};

}  // namespace casvm::net
