#pragma once

/// \file traffic.hpp
/// Per-edge communication accounting. Every byte that moves through a
/// casvm::net::Comm is recorded here, which is what lets the benchmarks
/// reproduce the paper's Table X (communication volume), Table XI
/// (bytes per operation) and Fig. 8 (P x P communication pattern) from a
/// real execution rather than from estimates.

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace casvm::net {

/// Immutable copy of a TrafficMatrix at a point in time.
struct TrafficSnapshot {
  int size = 0;                    ///< number of ranks
  std::vector<std::size_t> bytes;  ///< row-major P x P byte counts
  std::vector<std::size_t> ops;    ///< row-major P x P message counts

  std::size_t bytesBetween(int src, int dst) const;
  std::size_t opsBetween(int src, int dst) const;
  std::size_t totalBytes() const;
  std::size_t totalOps() const;
  /// Total bytes sent by `rank` plus received by `rank`.
  std::size_t bytesTouching(int rank) const;
  /// Mean message size in bytes; 0 when no messages were sent.
  double bytesPerOp() const;
  /// Render the P x P byte matrix as an aligned text grid (Fig. 8 view).
  std::string heatmap() const;
  /// Difference (this - earlier), entry-wise; sizes must match.
  TrafficSnapshot since(const TrafficSnapshot& earlier) const;
};

/// Thread-safe P x P traffic counter shared by all ranks of an Engine run.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(int size);

  /// Non-owning view over externally allocated counter arrays (P*P cells
  /// each), used by the process transport to place the counters in shared
  /// memory so every worker process records into one matrix. The storage
  /// must outlive the view and be zero-initialised by its creator; the
  /// view never resets it (a respawned worker attaches mid-run).
  TrafficMatrix(int size, std::atomic<std::size_t>* bytes,
                std::atomic<std::size_t>* ops);

  TrafficMatrix(TrafficMatrix&&) = default;
  TrafficMatrix& operator=(TrafficMatrix&&) = default;

  /// Record one message of `bytes` payload bytes from src to dst.
  void record(int src, int dst, std::size_t bytes);

  /// Zero all counters.
  void reset();

  int size() const { return size_; }

  /// Copy the counters into a plain, immutable snapshot.
  TrafficSnapshot snapshot() const;

 private:
  int size_;
  std::unique_ptr<std::atomic<std::size_t>[]> ownedBytes_;
  std::unique_ptr<std::atomic<std::size_t>[]> ownedOps_;
  std::atomic<std::size_t>* bytes_ = nullptr;  ///< owned or external
  std::atomic<std::size_t>* ops_ = nullptr;
};

}  // namespace casvm::net
