#pragma once

/// \file comm.hpp
/// The SPMD communication handle ("minimpi").
///
/// Every distributed algorithm in this repository is written against Comm
/// exactly as it would be written against MPI: ranks run the same program,
/// exchange typed messages, and synchronize through collectives. Backing
/// transport is in-process (thread mailboxes), which is the substitution
/// this reproduction makes for a physical cluster; see DESIGN.md §1.
///
/// Guarantees:
///  - point-to-point matching is exact on (source, tag) and FIFO per queue;
///  - send() is buffered (never blocks), recv() blocks until a message
///    arrives or the run is aborted by a peer failure;
///  - collectives are built from point-to-point messages (binomial trees,
///    direct gathers), so traffic accounting and virtual-time propagation
///    are honest per edge;
///  - all traffic is recorded in the run's TrafficMatrix and charged to the
///    per-rank VirtualClock with the alpha-beta CostModel.
///
/// Only trivially copyable element types can be transported.

#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "casvm/net/clock.hpp"
#include "casvm/net/cost.hpp"
#include "casvm/net/fault.hpp"
#include "casvm/net/mailbox.hpp"
#include "casvm/net/traffic.hpp"
#include "casvm/net/transport.hpp"
#include "casvm/support/error.hpp"

namespace casvm::obs {
class Lane;
class TraceRecorder;
}  // namespace casvm::obs

namespace casvm::net {

class ThreadTransport;

/// State shared by all ranks of one Engine::run invocation. Delivery and
/// failure flags live in the Transport backend; the World owns the traffic
/// matrix (or a view of the backend's shared storage) and the injector.
class World {
 public:
  /// Default backend: the World owns an in-process ThreadTransport. This
  /// is the pre-transport-refactor constructor, kept so direct World
  /// construction (tests, benches) is unchanged.
  World(int size, CostModel cost, FaultInjector* injector = nullptr);
  /// Run on an externally owned backend (e.g. a ProcTransport shared with
  /// the supervisor). `transport` must outlive the World.
  World(int size, CostModel cost, FaultInjector* injector,
        Transport* transport);
  ~World();

  int size() const { return size_; }
  const CostModel& cost() const { return cost_; }
  TrafficMatrix& traffic() { return traffic_; }
  Transport& transport() { return *transport_; }

  /// Direct mailbox access; valid on the thread backend only (used by the
  /// Engine's deadlock watchdog and the mailbox-level tests).
  Mailbox& mailbox(int rank);

  /// Fault schedule of this run, or nullptr when none is installed.
  FaultInjector* injector() const { return injector_; }

  /// Mark the run as failed; wakes every blocked recv with an error.
  void abortAll() { transport_->abortAll(); }
  /// True once abortAll() has been called (any rank failed fatally).
  bool aborted() const { return transport_->aborted(); }

  /// Mark one rank as failed WITHOUT aborting the run: peers blocked on a
  /// message from it are woken with an error naming `reason`, and future
  /// waits on it fail immediately. Messages it sent before dying are still
  /// delivered. This is the per-rank failure state that lets the
  /// communication-avoiding methods survive a crash.
  void markFailed(int rank, const std::string& reason) {
    transport_->markFailed(rank, reason);
  }
  bool rankFailed(int rank) const { return transport_->rankFailed(rank); }
  /// Ranks marked failed so far, in ascending order.
  std::vector<int> failedRanks() const { return transport_->failedRanks(); }

 private:
  int size_;
  CostModel cost_;
  std::unique_ptr<ThreadTransport> ownedTransport_;
  Transport* transport_;
  TrafficMatrix traffic_;
  FaultInjector* injector_ = nullptr;
};

/// Element types that can cross rank boundaries.
template <class T>
concept Wire = std::is_trivially_copyable_v<T>;

class Comm;

namespace detail {

/// RAII trace span around one communication op. With no lane attached the
/// constructor and destructor each cost a single branch. With a lane, the
/// outermost scope on this rank records a Cat::Comm span covering the op's
/// full virtual-time extent (transfer + wait) and the bytes the rank moved;
/// nested scopes — the point-to-point messages a collective is built from —
/// record nothing, so summing a lane's comm spans never double-counts.
class CommOpScope {
 public:
  CommOpScope(Comm& comm, const char* name, int peer = -1);
  ~CommOpScope();

  CommOpScope(const CommOpScope&) = delete;
  CommOpScope& operator=(const CommOpScope&) = delete;

 private:
  Comm& comm_;
  const char* name_;
  int peer_;
  bool active_ = false;
  double start_ = 0.0;
  double commStart_ = 0.0;
  std::size_t bytesStart_ = 0;
};

}  // namespace detail

/// Per-rank communicator. Cheap to copy around within the owning rank;
/// must only be used from the thread the Engine created it on.
class Comm {
 public:
  Comm(World* world, int rank, VirtualClock* clock)
      : world_(world), rank_(rank), clock_(clock) {}

  int rank() const { return rank_; }
  int size() const {
    return group_.empty() ? world_->size()
                          : static_cast<int>(group_.size());
  }

  /// Rank within the engine's full world (== rank() on the world comm).
  int worldRank() const {
    return group_.empty() ? rank_ : group_[static_cast<std::size_t>(rank_)];
  }

  /// True for the engine-created world communicator.
  bool isWorld() const { return group_.empty(); }
  VirtualClock& clock() { return *clock_; }
  const VirtualClock& clock() const { return *clock_; }

  /// Snapshot of all traffic recorded so far in this run (all ranks).
  TrafficSnapshot trafficSnapshot() const { return world_->traffic().snapshot(); }

  /// Attach (or detach, with nullptr) this rank's trace lane. Wired by the
  /// Engine when a TraceRecorder is installed; child communicators from
  /// split() inherit the parent's lane. With no lane every record site in
  /// the comm layer costs exactly one branch.
  void setTraceLane(obs::Lane* lane) { lane_ = lane; }
  obs::Lane* traceLane() const { return lane_; }

  // --- point-to-point ----------------------------------------------------

  /// Untyped buffered send. User tags must be < kUserTagLimit.
  void sendBytes(int dst, int tag, const void* data, std::size_t bytes);

  /// Untyped blocking receive; returns the payload. User tags must be
  /// < kUserTagLimit, symmetric with sendBytes.
  std::vector<std::byte> recvBytes(int src, int tag);

  /// Named fault-injection checkpoint: consults the run's FaultPlan for
  /// crash-at-phase clauses targeting this rank. A no-op without a plan.
  /// The training driver places checkpoints at phase boundaries ("init",
  /// "train") so even zero-communication methods have deterministic crash
  /// points.
  void faultCheckpoint(const std::string& label);

  /// Send one trivially copyable value.
  template <Wire T>
  void send(int dst, const T& value, int tag = 0) {
    sendBytes(dst, tag, &value, sizeof(T));
  }

  /// Receive one trivially copyable value.
  template <Wire T>
  T recv(int src, int tag = 0) {
    const std::vector<std::byte> payload = recvBytes(src, tag);
    CASVM_CHECK(payload.size() == sizeof(T), "recv: size mismatch");
    T value;
    std::memcpy(&value, payload.data(), sizeof(T));
    return value;
  }

  /// Send a vector of trivially copyable values.
  template <Wire T>
  void send(int dst, const std::vector<T>& v, int tag = 0) {
    sendBytes(dst, tag, v.data(), v.size() * sizeof(T));
  }

  /// Receive a vector; length is carried by the message itself.
  template <Wire T>
  std::vector<T> recvVec(int src, int tag = 0) {
    const std::vector<std::byte> payload = recvBytes(src, tag);
    CASVM_CHECK(payload.size() % sizeof(T) == 0, "recvVec: size mismatch");
    std::vector<T> v(payload.size() / sizeof(T));
    std::memcpy(v.data(), payload.data(), payload.size());
    return v;
  }

  // --- collectives ---------------------------------------------------------
  // All collectives must be called by every rank, in the same program order.

  /// Synchronize all ranks (binomial reduce + broadcast of a token byte).
  void barrier();

  /// Measurement-layer synchronization: parks every rank at a common point
  /// WITHOUT recording traffic or charging virtual time, runs `atRoot` on
  /// rank 0 while all other ranks are blocked inside the fence, then
  /// releases everyone. Use this to take consistent snapshots between
  /// phases of an algorithm — it is instrumentation, not communication,
  /// so it must never perturb the measurements it frames.
  void instrumentationFence(const std::function<void()>& atRoot = {});

  /// Partition this communicator (MPI_Comm_split semantics): ranks passing
  /// the same `color` form a new communicator, ordered by (key, old rank).
  /// Must be called by every rank of this communicator. The child shares
  /// the parent's mailboxes but runs in its own tag context, so traffic on
  /// the child never collides with the parent's (or a sibling's) — the
  /// traffic matrix still records physical world-rank edges. Supports
  /// nesting up to the context budget (~500 splits per run).
  Comm split(int color, int key);

  /// Broadcast a scalar from root to everyone.
  template <Wire T>
  void bcast(T& value, int root = 0) {
    detail::CommOpScope scope(*this, "bcast", root);
    bcastBytes(&value, sizeof(T), root, tagBcast);
  }

  /// Broadcast a vector from root; non-root vectors are resized to match.
  template <Wire T>
  void bcast(std::vector<T>& v, int root = 0);

  /// Reduce with a commutative op; the returned value is the full reduction
  /// on root and the partial/local value elsewhere (mirrors MPI_Reduce).
  template <Wire T, class Op>
  T reduce(T value, Op op, int root = 0);

  /// Elementwise vector reduce; all ranks must pass equal-length vectors.
  template <Wire T, class Op>
  std::vector<T> reduce(std::vector<T> v, Op op, int root = 0);

  /// Allreduce = reduce to rank 0 + broadcast.
  template <Wire T, class Op>
  T allreduce(T value, Op op) {
    detail::CommOpScope scope(*this, "allreduce");
    T r = reduce(value, op, 0);
    bcast(r, 0);
    return r;
  }

  /// Elementwise vector allreduce.
  template <Wire T, class Op>
  std::vector<T> allreduce(std::vector<T> v, Op op) {
    detail::CommOpScope scope(*this, "allreduce");
    std::vector<T> r = reduce(std::move(v), op, 0);
    bcast(r, 0);
    return r;
  }

  /// Gather one value per rank; result (size() entries) on root only.
  template <Wire T>
  std::vector<T> gather(const T& value, int root = 0);

  /// Gather variable-length vectors; per-rank parts on root only.
  template <Wire T>
  std::vector<std::vector<T>> gatherv(const std::vector<T>& v, int root = 0);

  /// Scatter variable-length parts from root; returns this rank's part.
  /// `parts` is only read on root and must have size() entries there.
  template <Wire T>
  std::vector<T> scatterv(const std::vector<std::vector<T>>& parts,
                          int root = 0);

  /// Allgather one value per rank; everyone gets all size() values.
  template <Wire T>
  std::vector<T> allgather(const T& value);

  /// Allgather variable-length vectors, concatenated in rank order.
  template <Wire T>
  std::vector<T> allgatherv(const std::vector<T>& v);

  /// Personalized all-to-all with variable part sizes (MPI_Alltoallv):
  /// sendParts[r] goes to rank r; the result's entry r is what rank r sent
  /// here. sendParts must have size() entries; the self-part is moved
  /// through locally without touching the network.
  template <Wire T>
  std::vector<std::vector<T>> alltoallv(
      std::vector<std::vector<T>> sendParts);

  /// Byte-payload variant (used for serialized datasets).
  std::vector<std::vector<std::byte>> alltoallvBytes(
      std::vector<std::vector<std::byte>> sendParts);

  // --- common reductions ---------------------------------------------------

  double allreduceSum(double v) {
    return allreduce(v, [](double a, double b) { return a + b; });
  }
  long long allreduceSum(long long v) {
    return allreduce(v, [](long long a, long long b) { return a + b; });
  }
  double allreduceMax(double v) {
    return allreduce(v, [](double a, double b) { return a > b ? a : b; });
  }

  /// (value, index) pair for argmin/argmax reductions à la MPI_MINLOC.
  struct ValIdx {
    double value;
    long long index;
  };

  /// Global minimum and the index that attains it (ties: smaller index).
  ValIdx allreduceMinloc(double value, long long index);
  /// Global maximum and the index that attains it (ties: smaller index).
  ValIdx allreduceMaxloc(double value, long long index);

  /// Tags >= this are reserved for collective internals.
  static constexpr int kUserTagLimit = 1 << 20;

 private:
  friend class detail::CommOpScope;

  static constexpr int tagBarrier = kUserTagLimit + 0;
  static constexpr int tagBcast = kUserTagLimit + 1;
  static constexpr int tagReduce = kUserTagLimit + 2;
  static constexpr int tagGather = kUserTagLimit + 3;
  static constexpr int tagScatter = kUserTagLimit + 4;
  static constexpr int tagAllgather = kUserTagLimit + 5;
  static constexpr int tagFence = kUserTagLimit + 6;
  static constexpr int tagAlltoall = kUserTagLimit + 7;

  void sendRaw(int dst, int tag, const void* data, std::size_t bytes);
  Message recvRaw(int src, int tag);

  // Typed transport on reserved tags (no user-tag validation).
  template <Wire T>
  void sendT(int dst, const T& value, int tag) {
    sendRaw(dst, tag, &value, sizeof(T));
  }
  template <Wire T>
  T recvT(int src, int tag) {
    const Message msg = recvRaw(src, tag);
    CASVM_CHECK(msg.payload.size() == sizeof(T), "recv: size mismatch");
    T value;
    std::memcpy(&value, msg.payload.data(), sizeof(T));
    return value;
  }
  template <Wire T>
  void sendVecT(int dst, const std::vector<T>& v, int tag) {
    sendRaw(dst, tag, v.data(), v.size() * sizeof(T));
  }
  template <Wire T>
  std::vector<T> recvVecT(int src, int tag) {
    const Message msg = recvRaw(src, tag);
    CASVM_CHECK(msg.payload.size() % sizeof(T) == 0, "recvVec: size mismatch");
    std::vector<T> v(msg.payload.size() / sizeof(T));
    std::memcpy(v.data(), msg.payload.data(), msg.payload.size());
    return v;
  }

  /// Binomial-tree broadcast of a fixed-size buffer.
  void bcastBytes(void* data, std::size_t bytes, int root, int tag);

  Comm(World* world, int rank, VirtualClock* clock, std::vector<int> group,
       int context)
      : world_(world), rank_(rank), clock_(clock), group_(std::move(group)),
        context_(context) {}

  /// Global (engine) rank of a local rank in this communicator.
  int toWorld(int localRank) const {
    return group_.empty() ? localRank
                          : group_[static_cast<std::size_t>(localRank)];
  }

  /// Shift a tag into this communicator's context window.
  int contextTag(int tag) const { return context_ * kContextStride + tag; }

  static constexpr int kContextStride = 1 << 22;  // room for all tag kinds
  static constexpr int kMaxContext = (1 << 9) - 1;

  World* world_;
  int rank_;
  VirtualClock* clock_;
  /// Local-to-world rank map; empty for the world communicator.
  std::vector<int> group_;
  /// Tag-space context of this communicator (0 = world).
  int context_ = 0;
  /// Contexts handed to children of this communicator (deterministic
  /// because split() is called in the same program order on every rank).
  int childContexts_ = 0;
  /// Trace lane of the owning rank (nullptr = tracing off).
  obs::Lane* lane_ = nullptr;
  /// Comm-op nesting depth; only depth-0 scopes record spans.
  int traceDepth_ = 0;
  /// Bytes sent + received by this rank so far (only counted while a lane
  /// is attached); scopes report the per-op delta.
  std::size_t traceBytes_ = 0;
};

// --- template implementations ----------------------------------------------

template <Wire T>
void Comm::bcast(std::vector<T>& v, int root) {
  detail::CommOpScope scope(*this, "bcast", root);
  // Length first so non-roots can size their buffers, then the payload.
  // Both legs ride the same binomial tree.
  std::size_t len = v.size();
  bcastBytes(&len, sizeof(len), root, tagBcast);
  if (rank_ != root) v.resize(len);
  if (len > 0) bcastBytes(v.data(), len * sizeof(T), root, tagBcast);
}

template <Wire T, class Op>
T Comm::reduce(T value, Op op, int root) {
  detail::CommOpScope scope(*this, "reduce", root);
  const int size = this->size();
  const int vrank = (rank_ - root + size) % size;
  for (int mask = 1; mask < size; mask <<= 1) {
    if ((vrank & mask) == 0) {
      const int vpeer = vrank | mask;
      if (vpeer < size) {
        const int peer = (vpeer + root) % size;
        value = op(value, recvT<T>(peer, tagReduce));
      }
    } else {
      const int peer = ((vrank & ~mask) + root) % size;
      sendT(peer, value, tagReduce);
      break;
    }
  }
  return value;
}

template <Wire T, class Op>
std::vector<T> Comm::reduce(std::vector<T> v, Op op, int root) {
  detail::CommOpScope scope(*this, "reduce", root);
  const int size = this->size();
  const int vrank = (rank_ - root + size) % size;
  for (int mask = 1; mask < size; mask <<= 1) {
    if ((vrank & mask) == 0) {
      const int vpeer = vrank | mask;
      if (vpeer < size) {
        const int peer = (vpeer + root) % size;
        const std::vector<T> other = recvVecT<T>(peer, tagReduce);
        CASVM_CHECK(other.size() == v.size(),
                    "vector reduce: length mismatch across ranks");
        for (std::size_t i = 0; i < v.size(); ++i) v[i] = op(v[i], other[i]);
      }
    } else {
      const int peer = ((vrank & ~mask) + root) % size;
      sendVecT(peer, v, tagReduce);
      break;
    }
  }
  return v;
}

template <Wire T>
std::vector<T> Comm::gather(const T& value, int root) {
  detail::CommOpScope scope(*this, "gather", root);
  const int size = this->size();
  if (rank_ == root) {
    std::vector<T> all(static_cast<std::size_t>(size));
    all[static_cast<std::size_t>(root)] = value;
    for (int r = 0; r < size; ++r) {
      if (r != root) all[static_cast<std::size_t>(r)] = recvT<T>(r, tagGather);
    }
    return all;
  }
  sendT(root, value, tagGather);
  return {};
}

template <Wire T>
std::vector<std::vector<T>> Comm::gatherv(const std::vector<T>& v, int root) {
  detail::CommOpScope scope(*this, "gatherv", root);
  const int size = this->size();
  if (rank_ == root) {
    std::vector<std::vector<T>> all(static_cast<std::size_t>(size));
    all[static_cast<std::size_t>(root)] = v;
    for (int r = 0; r < size; ++r) {
      if (r != root) all[static_cast<std::size_t>(r)] = recvVecT<T>(r, tagGather);
    }
    return all;
  }
  sendVecT(root, v, tagGather);
  return {};
}

template <Wire T>
std::vector<T> Comm::scatterv(const std::vector<std::vector<T>>& parts,
                              int root) {
  detail::CommOpScope scope(*this, "scatterv", root);
  const int size = this->size();
  if (rank_ == root) {
    CASVM_CHECK(parts.size() == static_cast<std::size_t>(size),
                "scatterv: parts must have one entry per rank on root");
    for (int r = 0; r < size; ++r) {
      if (r != root) sendVecT(r, parts[static_cast<std::size_t>(r)], tagScatter);
    }
    return parts[static_cast<std::size_t>(root)];
  }
  return recvVecT<T>(root, tagScatter);
}

template <Wire T>
std::vector<T> Comm::allgather(const T& value) {
  detail::CommOpScope scope(*this, "allgather");
  std::vector<T> all = gather(value, 0);
  bcast(all, 0);
  return all;
}

template <Wire T>
std::vector<T> Comm::allgatherv(const std::vector<T>& v) {
  detail::CommOpScope scope(*this, "allgatherv");
  std::vector<std::vector<T>> parts = gatherv(v, 0);
  std::vector<T> flat;
  if (rank_ == 0) {
    for (const auto& part : parts) flat.insert(flat.end(), part.begin(), part.end());
  }
  bcast(flat, 0);
  return flat;
}

template <Wire T>
std::vector<std::vector<T>> Comm::alltoallv(
    std::vector<std::vector<T>> sendParts) {
  detail::CommOpScope scope(*this, "alltoallv");
  const int size = this->size();
  CASVM_CHECK(sendParts.size() == static_cast<std::size_t>(size),
              "alltoallv: one part per rank required");
  std::vector<std::vector<T>> received(static_cast<std::size_t>(size));
  // Buffered sends first (no ordering hazards), then deterministic
  // receives in rank order; the self-part never touches the network.
  for (int dst = 0; dst < size; ++dst) {
    if (dst == rank_) continue;
    sendVecT(dst, sendParts[static_cast<std::size_t>(dst)], tagAlltoall);
  }
  received[static_cast<std::size_t>(rank_)] =
      std::move(sendParts[static_cast<std::size_t>(rank_)]);
  for (int src = 0; src < size; ++src) {
    if (src == rank_) continue;
    received[static_cast<std::size_t>(src)] =
        recvVecT<T>(src, tagAlltoall);
  }
  return received;
}

/// One rank that died of an injected crash the run survived.
struct RankFailure {
  int rank = -1;
  std::string reason;
};

/// Run statistics returned by Engine::run.
struct RunStats {
  int size = 0;
  double wallSeconds = 0.0;            ///< real elapsed time of the run
  std::vector<double> computeSeconds;  ///< per-rank virtual compute time
  std::vector<double> commSeconds;     ///< per-rank virtual comm (+wait) time
  /// Per-rank wait component of commSeconds (time advanced over while
  /// blocked on a slower peer's message).
  std::vector<double> waitSeconds;
  TrafficSnapshot traffic;             ///< all traffic of the run
  /// Injected crashes survived under rank-failure tolerance (rank order).
  std::vector<RankFailure> failures;

  /// True when at least one rank died but the run completed.
  bool degraded() const { return !failures.empty(); }

  /// Modeled parallel time: slowest rank's virtual clock.
  double virtualSeconds() const;
  /// Slowest rank's compute component.
  double maxComputeSeconds() const;
  /// Slowest rank's communication component.
  double maxCommSeconds() const;
  /// Sum of all ranks' compute time (the serial-equivalent work).
  double totalComputeSeconds() const;
};

/// Spawns `size` ranks — threads on the default backend, forked worker
/// processes on the proc backend — and runs an SPMD function on each.
class Engine {
 public:
  explicit Engine(int size, CostModel cost = {});

  int size() const { return size_; }
  const CostModel& cost() const { return cost_; }

  /// Select the delivery backend for subsequent run() calls. The thread
  /// backend (default) keeps every existing behaviour bitwise; the proc
  /// backend forks one worker per rank, replaces the deadlock watchdog
  /// with heartbeats + bounded receives, and supervises worker lifecycle
  /// (crash/hang detection, respawn, degraded fallback). `tuning` is
  /// validated here so hostile values fail at configuration time.
  void setTransport(TransportKind kind, TransportTuning tuning = {}) {
    tuning.validate();
    transportKind_ = kind;
    tuning_ = tuning;
  }
  TransportKind transportKind() const { return transportKind_; }
  const TransportTuning& transportTuning() const { return tuning_; }

  /// Cross-process result marshalling (proc backend): `serialize` runs in
  /// the worker after its SPMD function returns (or crashes tolerably) and
  /// packs the rank's side effects; `absorb` runs in the supervisor with
  /// those bytes once the worker resolves. Without a channel the proc
  /// backend still runs, but rank side effects die with the worker.
  struct ResultChannel {
    std::function<std::vector<std::byte>(int rank)> serialize;
    std::function<void(int rank, const std::vector<std::byte>&)> absorb;
  };
  void setResultChannel(ResultChannel channel) {
    resultChannel_ = std::move(channel);
  }

  /// Respawn entry for a rank whose worker process died (proc backend):
  /// called instead of the run function with the 1-based respawn attempt.
  /// Must be collective-free — its peers are mid-run and will not re-enter
  /// any collective — which is what the partitioned methods' checkpointed
  /// local resume provides. Without a respawn function (or with the budget
  /// exhausted) a dead rank falls through to the degraded/abort path.
  void setRespawnFn(std::function<void(Comm&, int attempt)> fn) {
    respawnFn_ = std::move(fn);
  }
  /// Respawns allowed per rank before the degraded fallback (proc backend).
  void setRespawnBudget(int budget) { respawnBudget_ = budget; }

  /// Append supervisor lifecycle events (spawn, death taxonomy, respawn,
  /// fallback) to this file (proc backend; empty = stderr logging only).
  void setSupervisorLogPath(std::string path) {
    supervisorLogPath_ = std::move(path);
  }

  /// Install a deterministic fault schedule for subsequent run() calls
  /// (an empty plan clears it). Injector state resets every run, so the
  /// same plan reproduces the same faults on every run.
  void setFaultPlan(FaultPlan plan) { faultPlan_ = std::move(plan); }
  const FaultPlan& faultPlan() const { return faultPlan_; }

  /// Survive injected rank crashes (RankCrash) instead of aborting: the
  /// dead rank is recorded in RunStats::failures, peers waiting on it are
  /// woken with an error, and everyone else runs to completion. Organic
  /// (non-injected) failures always abort the whole run.
  void setTolerateRankFailures(bool tolerate) {
    tolerateRankFailures_ = tolerate;
  }

  /// Deadlock watchdog: if every still-running rank is blocked in a
  /// receive and no message moves anywhere for `seconds` of wall time,
  /// the run is aborted and unwound with a diagnostic dump of each rank's
  /// wait target and every mailbox's pending (src, tag) queues — instead
  /// of hanging forever (e.g. a dropped message under a collective).
  /// `seconds` <= 0 disables the watchdog.
  void setWatchdogSeconds(double seconds) { watchdogSeconds_ = seconds; }
  double watchdogSeconds() const { return watchdogSeconds_; }

  /// Attach a trace recorder for subsequent run() calls (nullptr detaches).
  /// Each run adds one lane per rank (pid = rank) and every comm op, phase
  /// and solver-progress producer on that rank records into it. Without a
  /// recorder the instrumentation costs a single branch per record site.
  void setTraceRecorder(obs::TraceRecorder* recorder) { trace_ = recorder; }
  obs::TraceRecorder* traceRecorder() const { return trace_; }

  /// Execute `fn` on every rank; returns when all ranks finish.
  /// If any rank throws, the run is aborted (blocked receives wake with an
  /// error) and the first root-cause exception is rethrown as casvm::Error.
  RunStats run(const std::function<void(Comm&)>& fn);

 private:
  RunStats runThread(const std::function<void(Comm&)>& fn);
  RunStats runProc(const std::function<void(Comm&)>& fn);

  int size_;
  CostModel cost_;
  FaultPlan faultPlan_;
  bool tolerateRankFailures_ = false;
  double watchdogSeconds_ = 30.0;
  obs::TraceRecorder* trace_ = nullptr;
  TransportKind transportKind_ = TransportKind::Thread;
  TransportTuning tuning_;
  ResultChannel resultChannel_;
  std::function<void(Comm&, int)> respawnFn_;
  int respawnBudget_ = 0;
  std::string supervisorLogPath_;
};

}  // namespace casvm::net
