#pragma once

/// \file thread_transport.hpp
/// The in-process transport backend: one Mailbox per rank thread, shared
/// failure flags. This is the original "minimpi" delivery path, extracted
/// behind the Transport interface verbatim so every existing test, table
/// reproduction and traffic count stays bitwise-identical on it.

#include <mutex>
#include <vector>

#include "casvm/net/transport.hpp"

namespace casvm::net {

class ThreadTransport final : public Transport {
 public:
  explicit ThreadTransport(int size);

  int size() const override { return size_; }
  void put(int src, int dst, int tag, Message msg) override;
  Message take(int self, int src, int tag) override;
  void abortAll() override;
  bool aborted() const override {
    return aborted_.load(std::memory_order_acquire);
  }
  void markFailed(int rank, const std::string& reason) override;
  bool rankFailed(int rank) const override;
  std::vector<int> failedRanks() const override;

  /// Direct mailbox access for the Engine's deadlock watchdog and the
  /// mailbox-level tests (wait state, pending queues, op counts). Only the
  /// thread backend has per-rank mailboxes to expose.
  Mailbox& mailbox(int rank);

 private:
  int size_;
  std::vector<Mailbox> mailboxes_;
  std::atomic<bool> aborted_{false};
  mutable std::mutex failMutex_;
  std::vector<char> failed_;
};

}  // namespace casvm::net
