#pragma once

/// \file cost.hpp
/// The alpha-beta (latency/bandwidth) communication cost model used to
/// assign virtual time to message traffic. Matches the t_s / t_w terms of
/// the paper's performance model (Table II): alpha is the per-message
/// startup cost (t_s) and beta the per-byte transfer cost (t_w scaled to
/// bytes).
///
/// Defaults approximate a Cray Aries-class interconnect (NERSC Edison, the
/// paper's machine): ~1.5 us latency, ~8 GB/s effective point-to-point
/// bandwidth.

namespace casvm::net {

/// Point-to-point message cost: alpha + beta * bytes seconds.
struct CostModel {
  double alpha = 1.5e-6;   ///< startup latency per message (seconds)
  double beta = 1.25e-10;  ///< per-byte transfer time (seconds/byte)

  /// Modeled time for one point-to-point message of `bytes` bytes.
  double messageSeconds(double bytes) const { return alpha + beta * bytes; }
};

}  // namespace casvm::net
