#pragma once

/// \file transport.hpp
/// The delivery backend behind casvm::net::Comm.
///
/// Comm's point-to-point and collective surface is written against this
/// abstract Transport: put() hands a finished Message (payload + modeled
/// arrival time) to the backend, take() blocks until the matching message
/// arrives, and the failure surface (abortAll / markFailed) is how a run
/// unwinds when a rank dies. Two backends exist:
///
///  - ThreadTransport (the default): rank threads in one process sharing
///    a vector of Mailboxes. Exactly the pre-refactor "minimpi" runtime —
///    all tests, table reproductions and traffic accounting stay
///    bitwise-valid on it.
///  - ProcTransport: one forked worker process per rank, bytes moving
///    over shared-memory SPSC rings with bounded-wait receives, per-rank
///    heartbeats and a crash/hang failure taxonomy surfaced to the
///    Supervisor (see proc_transport.hpp, supervisor.hpp).
///
/// The traffic matrix is logically above the transport (Comm records
/// sender-side before put()), but its storage may live inside the backend:
/// ProcTransport places the counters in shared memory so all worker
/// processes and the supervisor see one matrix, keeping TrafficSnapshot
/// byte counts identical across backends.

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "casvm/net/mailbox.hpp"

namespace casvm::net {

/// Which backend an Engine run executes on.
enum class TransportKind : std::uint8_t {
  Thread = 0,  ///< in-process rank threads + mailboxes (the default)
  Proc = 1,    ///< forked worker processes + shared-memory rings
};

/// Stable names for CLI flags ("thread" | "proc").
const char* transportName(TransportKind kind);
TransportKind transportFromName(std::string_view name);

/// Liveness/timing knobs of the process transport. All values are
/// validated up front (validate()) so hostile input — zero, negative, or
/// values that would overflow the backoff arithmetic — fails with a named
/// error at configuration time, never as undefined behaviour mid-run.
struct TransportTuning {
  /// Worker heartbeat refresh cadence in milliseconds. The supervisor
  /// treats a worker whose heartbeat is older than a few multiples of
  /// this as hung (SIGSTOP freezes the heartbeat thread too).
  int heartbeatMs = 50;
  /// Bounded receive wait in milliseconds: a blocked recv that sees no
  /// message for this long throws instead of waiting forever (the proc
  /// replacement for the thread backend's deadlock watchdog).
  int commTimeoutMs = 30000;
  /// Base of the exponential respawn backoff: attempt k sleeps
  /// respawnBackoffMs << (k-1) milliseconds (capped) before the rank is
  /// forked again.
  int respawnBackoffMs = 50;

  /// Throws casvm::Error naming the offending knob and its valid range.
  void validate() const;

  /// Heartbeat age in ms beyond which a live worker counts as hung.
  int staleAfterMs() const;
  /// Backoff before respawn attempt `attempt` (1-based), overflow-capped.
  int backoffForAttemptMs(int attempt) const;
};

/// Abstract delivery + failure surface shared by all ranks of one run.
/// Implementations must be safe to call concurrently from all ranks.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int size() const = 0;

  /// Deliver `msg` from world rank `src` to `dst` under `tag`. Buffered:
  /// never blocks indefinitely on the thread backend; the proc backend may
  /// block up to its comm timeout when a ring is full.
  virtual void put(int src, int dst, int tag, Message msg) = 0;

  /// Blocking matched receive on `self`'s inbox. Throws casvm::Error when
  /// the run aborts, the source rank is marked failed with nothing left to
  /// deliver, or (proc backend) the bounded wait expires.
  virtual Message take(int self, int src, int tag) = 0;

  /// Mark the whole run failed; wakes every blocked take() with an error.
  virtual void abortAll() = 0;
  virtual bool aborted() const = 0;

  /// Mark one rank failed WITHOUT aborting: peers blocked on its messages
  /// wake with an error naming `reason`, already-delivered messages remain
  /// readable. The per-rank failure state that lets communication-avoiding
  /// methods survive a crash.
  virtual void markFailed(int rank, const std::string& reason) = 0;
  virtual bool rankFailed(int rank) const = 0;
  /// Ranks marked failed so far, ascending.
  virtual std::vector<int> failedRanks() const = 0;

  /// Backend-provided storage for the run's traffic counters (P*P cells
  /// each), or nullptr when the World should own private storage. The proc
  /// backend returns pointers into its shared-memory arena so every worker
  /// process records into one matrix.
  virtual std::atomic<std::size_t>* trafficBytesStorage() { return nullptr; }
  virtual std::atomic<std::size_t>* trafficOpsStorage() { return nullptr; }
};

}  // namespace casvm::net
