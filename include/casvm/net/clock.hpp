#pragma once

/// \file clock.hpp
/// Per-rank virtual time.
///
/// The simulated ranks of an Engine run share one physical machine, so a
/// rank's wall-clock includes time it spent descheduled while other ranks
/// ran. Virtual time fixes this: compute time is measured with the
/// per-thread CPU clock (only the work this rank actually did), and
/// communication time is charged from the CostModel. Message timestamps
/// propagate through recv() so a rank that waits for a slow peer advances
/// to the peer's completion time — i.e. virtual time follows the critical
/// path, exactly like a dedicated-node execution would.

#include "casvm/net/cost.hpp"

namespace casvm::net {

/// Tracks one rank's virtual clock (compute + communication seconds).
class VirtualClock {
 public:
  /// Begin timing; called by the Engine on the rank's own thread.
  void start();

  /// Fold thread-CPU time elapsed since the last sample into compute time.
  /// Comm calls invoke this on entry so all non-comm work counts as compute.
  void sampleCompute();

  /// Charge `seconds` of communication time.
  void addComm(double seconds);

  /// Charge extra compute seconds directly (used by modeled workloads).
  void addCompute(double seconds);

  /// Advance the clock to `t` if `t` is later than now (message arrival).
  void advanceTo(double t);

  /// Scale sampled CPU time by `scale` (>= 1). Used by fault injection to
  /// model a slow rank: the straggler's compute costs `scale`x on the
  /// virtual clock while the real work stays the same.
  void setComputeScale(double scale);

  /// Virtual now = compute + comm (+ any waiting advanced over).
  double now() const { return computeSeconds_ + commSeconds_ + skew_; }

  double computeSeconds() const { return computeSeconds_; }
  double commSeconds() const { return commSeconds_ + skew_; }

  /// The wait component of commSeconds(): time spent blocked on peers
  /// whose messages arrived later than this rank's local virtual now.
  double waitSeconds() const { return skew_; }

 private:
  double computeSeconds_ = 0.0;
  double commSeconds_ = 0.0;
  /// Time spent waiting on peers (arrival timestamps later than local now).
  /// Reported as communication time: it is time the rank was not computing.
  double skew_ = 0.0;
  double lastCpuSample_ = 0.0;
  double computeScale_ = 1.0;
  bool started_ = false;
};

}  // namespace casvm::net
