#pragma once

/// \file fault.hpp
/// Deterministic fault injection for the casvm::net runtime.
///
/// The paper's communication table is also a survivability table: the CA
/// family (CP-SVM, BKM-CA, FCFS-CA, RA-CA) trains P fully independent
/// sub-SVMs, so losing a rank costs one partition; Dis-SMO and the tree
/// methods weave every rank into one global solve, so losing a rank is
/// fatal. To test both behaviours without a real cluster, a FaultPlan
/// describes a schedule of injected faults and a per-run FaultInjector is
/// consulted by Comm on every send/recv (and at named phase checkpoints):
///
///  - crash:  a rank dies at its Nth communication operation or at a named
///            phase checkpoint ("init", "train");
///  - drop:   a message silently never arrives (the sender still pays the
///            transfer cost — the bytes left its NIC);
///  - delay:  a message arrives `seconds` of extra virtual latency late;
///  - slow:   a rank's compute runs `factor` times slower on the virtual
///            clock (a straggler).
///
/// Every decision is deterministic: counters and the probabilistic-clause
/// RNG streams are per sender rank, so each rank's program order alone
/// fixes the outcome — the same plan and seed reproduce the same run
/// regardless of thread scheduling.

#include <cstdint>
#include <string>
#include <vector>

#include "casvm/support/error.hpp"
#include "casvm/support/rng.hpp"

namespace casvm::net {

/// Thrown on a rank's own thread when its FaultPlan kills it. The Engine
/// treats this differently from organic failures: with rank-failure
/// tolerance enabled the run survives (the crash is recorded in
/// RunStats::failures) instead of aborting every rank.
class RankCrash : public Error {
 public:
  RankCrash(int rank, const std::string& what) : Error(what), rank_(rank) {}
  int crashedRank() const { return rank_; }

 private:
  int rank_;
};

enum class FaultKind {
  CrashAtOp,     ///< rank dies entering its Nth comm operation (1-based)
  CrashAtPhase,  ///< rank dies at a named phase checkpoint
  DropMessage,   ///< matching message is silently lost
  DelayMessage,  ///< matching message arrives extra virtual seconds late
  SlowRank,      ///< rank's compute is scaled by `factor` on the clock
  KillRank,      ///< raise(SIGKILL) on a real worker process (proc only)
  HangRank,      ///< raise(SIGSTOP) on a real worker process (proc only)
};

/// One clause of a fault schedule. Fields are interpreted per kind; see
/// FaultPlan::parse for the textual form.
struct FaultSpec {
  FaultKind kind = FaultKind::CrashAtOp;
  int rank = -1;            ///< crash/slow target rank
  long long op = 0;         ///< CrashAtOp: 1-based comm-op index
  std::string phase;        ///< CrashAtPhase: checkpoint label
  int src = -1;             ///< drop/delay: sender (-1 = any)
  int dst = -1;             ///< drop/delay: receiver (-1 = any)
  /// drop/delay: only the Nth match (0 = every).
  /// CrashAtPhase: first matching checkpoint entry to fire at (0 or 1 =
  /// the first). Lets a test crash the Kth mid-solve checkpoint.
  long long nth = 0;
  /// CrashAtPhase: number of consecutive matching entries to fire on,
  /// starting at `nth` (0 = every entry from `nth` on). The default of 1
  /// kills the rank once; a retried rank re-entering the same checkpoint
  /// then survives. times=N crashes N attempts in a row — the knob the
  /// retry-exhaustion tests use.
  long long times = 1;
  double probability = 1.0; ///< drop/delay: chance per match (seeded)
  double seconds = 0.0;     ///< DelayMessage: extra virtual latency
  double factor = 1.0;      ///< SlowRank: compute multiplier (>= 1)

  /// One-clause textual form, parseable by FaultPlan::parse.
  std::string describe() const;
};

/// A seeded, deterministic schedule of injected faults.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }

  /// Parse a semicolon-separated clause list, e.g.
  ///   "crash:rank=1,op=5"            rank 1 dies at its 5th comm op
  ///   "crash:rank=2,phase=train"     rank 2 dies entering the train phase
  ///   "crash:rank=2,phase=solve,nth=3"   ...at its 3rd solve checkpoint
  ///   "crash:rank=2,phase=train,times=2" ...twice (kills one retry too)
  ///   "drop:src=0,dst=1,nth=1"       first message 0->1 is lost
  ///   "drop:src=0,prob=0.25"         a quarter of rank 0's sends are lost
  ///   "delay:src=1,dst=0,seconds=1e-3"  +1ms virtual latency on 1->0
  ///   "slow:rank=3,factor=4"         rank 3 computes 4x slower
  ///   "kill:rank=2,phase=solve"      rank 2's process takes SIGKILL at
  ///                                  its first solve checkpoint
  ///   "hang:rank=1,op=7"             rank 1's process takes SIGSTOP at
  ///                                  its 7th comm op (a real hang)
  /// kill/hang accept the same op=/phase=/nth=/times= placement as crash,
  /// but deliver a real signal to a real worker process, so they only work
  /// on the process transport; the thread backend rejects such a plan by
  /// name before running.
  /// Malformed input throws casvm::Error naming the offending token and
  /// listing the valid kinds/keys. Phase labels are free-form (any
  /// faultCheckpoint() label matches); the training driver defines
  /// "init", "train" and "solve".
  static FaultPlan parse(const std::string& text, std::uint64_t seed = 0);

  /// True when the plan holds kill/hang clauses, which signal real worker
  /// processes and therefore need the process transport.
  bool requiresProcessTransport() const;

  /// Round-trippable textual form ("" for an empty plan).
  std::string describe() const;
};

/// Per-run injector. One instance lives for one Engine::run invocation;
/// the World hands it to every Comm. All mutable state is striped per
/// sender rank and only ever touched from that rank's own thread, so the
/// injector needs no locks and its decisions are schedule-independent.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int worldSize);

  struct SendVerdict {
    bool drop = false;
    double delaySeconds = 0.0;
  };

  /// Consulted on the sender's thread before a message leaves. Counts one
  /// comm op for `src`; throws RankCrash when the plan kills `src` here.
  SendVerdict onSend(int src, int dst);

  /// Consulted on the receiver's thread before blocking in a receive.
  /// Counts one comm op for `rank`; throws RankCrash on a matching crash.
  void onRecv(int rank);

  /// Named phase checkpoint (CrashAtPhase clauses). Does not count as a
  /// comm operation, so zero-communication methods (RA-CA casvm2) still
  /// have deterministic crash points. Each (clause, rank) pair counts its
  /// matching entries: the clause fires on entries [nth, nth+times), so a
  /// retried rank re-entering the checkpoint survives once the configured
  /// crash budget is spent.
  void atPhase(int rank, const std::string& label);

  /// Compute-clock multiplier for `rank` (product of SlowRank clauses).
  double computeScale(int rank) const;

  /// Arm kill/hang clauses to deliver real signals (raise(SIGKILL) /
  /// raise(SIGSTOP)) to the calling process. Only the process transport's
  /// worker processes call this; in the default mode a firing kill/hang
  /// clause throws a casvm::Error naming the proc-transport requirement,
  /// as a backstop behind the Engine's up-front plan rejection.
  void enableProcessSignals() { processSignals_ = true; }

  const FaultPlan& plan() const { return plan_; }

 private:
  /// Count one comm op for `rank` and throw if a CrashAtOp clause matches.
  void countOp(int rank);

  /// Deliver a firing kill/hang clause: real signal under process-signals
  /// mode, named error otherwise.
  [[noreturn]] void fireSignalFault(int rank, const FaultSpec& spec);

  FaultPlan plan_;
  int size_;
  bool processSignals_ = false;
  std::vector<long long> opCount_;    ///< per rank; own-thread access only
  std::vector<long long> matchCount_; ///< per (clause, sender); sender thread
  std::vector<Rng> senderRng_;        ///< per sender; own-thread access only
};

}  // namespace casvm::net
