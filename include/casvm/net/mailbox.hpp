#pragma once

/// \file mailbox.hpp
/// The delivery mechanism behind casvm::net::Comm: one Mailbox per rank,
/// holding FIFO queues keyed by (source rank, tag). Matching is exact on
/// (src, tag) and FIFO within a queue, the same ordering guarantee MPI
/// gives for matched point-to-point traffic.
///
/// Beyond delivery, the mailbox is the runtime's failure boundary: abort()
/// wakes every blocked take() (whole-run failure), failSource() poisons a
/// single peer (rank failure, survivable for communication-avoiding
/// methods), and waitState()/pendingQueues() expose what the owning rank
/// is blocked on — the raw material for the Engine's deadlock watchdog
/// diagnostics.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace casvm::net {

/// A message in flight: raw payload plus the sender's virtual completion
/// time, which the receiver uses to advance its own clock past the wait.
struct Message {
  std::vector<std::byte> payload;
  double arrivalVirtualTime = 0.0;
};

/// Thread-safe blocking mailbox for one receiving rank.
class Mailbox {
 public:
  /// Enqueue a message from `src` with `tag`; wakes any blocked take().
  void put(int src, int tag, Message msg);

  /// Dequeue the oldest message from (src, tag); blocks until one arrives.
  /// Throws casvm::Error if abort() is called while waiting (run failure)
  /// or if `src` is marked dead with no message left to deliver.
  Message take(int src, int tag);

  /// Bounded-wait take(): same matching and failure semantics, but returns
  /// nullopt once `timeoutMs` elapse with no message. The process
  /// transport's replacement for unbounded blocking — a vanished peer
  /// surfaces as a timeout instead of a deadlock.
  std::optional<Message> takeFor(int src, int tag, int timeoutMs);

  /// Number of queued messages across all (src, tag) queues.
  std::size_t pending() const;

  /// Wake all blocked take() calls with an error; used when a peer rank
  /// fails so the run unwinds instead of deadlocking.
  void abort();

  /// Mark one source rank dead: a take() on that source finds queued
  /// messages as usual (they were sent before the failure), but once the
  /// queue is empty it throws `reason` instead of blocking forever.
  void failSource(int src, std::string reason);

  /// What the owning rank is currently blocked on inside take(), if
  /// anything. Read by the Engine's deadlock watchdog.
  struct WaitState {
    bool waiting = false;
    int src = -1;
    int tag = -1;
  };
  WaitState waitState() const;

  /// Snapshot of the non-empty queues: (src, tag, queued count). Used for
  /// the watchdog's diagnostic dump of undeliverable traffic.
  struct QueueInfo {
    int src = 0;
    int tag = 0;
    std::size_t depth = 0;
  };
  std::vector<QueueInfo> pendingQueues() const;

  /// Monotonic count of completed put/take operations. The watchdog uses
  /// the world-wide sum as a progress measure: if it stops moving while
  /// every running rank is blocked, the run is deadlocked.
  std::uint64_t opCount() const { return ops_.load(std::memory_order_relaxed); }

 private:
  bool aborted_ = false;
  using Key = std::uint64_t;  // (src << 32) | tag
  static Key key(int src, int tag);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::deque<Message>> queues_;
  std::map<int, std::string> deadSources_;
  WaitState wait_;
  std::atomic<std::uint64_t> ops_{0};
};

}  // namespace casvm::net
