#pragma once

/// \file mailbox.hpp
/// The delivery mechanism behind casvm::net::Comm: one Mailbox per rank,
/// holding FIFO queues keyed by (source rank, tag). Matching is exact on
/// (src, tag) and FIFO within a queue, the same ordering guarantee MPI
/// gives for matched point-to-point traffic.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

namespace casvm::net {

/// A message in flight: raw payload plus the sender's virtual completion
/// time, which the receiver uses to advance its own clock past the wait.
struct Message {
  std::vector<std::byte> payload;
  double arrivalVirtualTime = 0.0;
};

/// Thread-safe blocking mailbox for one receiving rank.
class Mailbox {
 public:
  /// Enqueue a message from `src` with `tag`; wakes any blocked take().
  void put(int src, int tag, Message msg);

  /// Dequeue the oldest message from (src, tag); blocks until one arrives.
  /// Throws casvm::Error if abort() is called while waiting (peer failure).
  Message take(int src, int tag);

  /// Number of queued messages across all (src, tag) queues.
  std::size_t pending() const;

  /// Wake all blocked take() calls with an error; used when a peer rank
  /// fails so the run unwinds instead of deadlocking.
  void abort();

 private:
  bool aborted_ = false;
  using Key = std::uint64_t;  // (src << 32) | tag
  static Key key(int src, int tag);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::deque<Message>> queues_;
};

}  // namespace casvm::net
