#pragma once

/// \file supervisor.hpp
/// Worker-process lifecycle for the proc transport.
///
/// The Supervisor forks one worker per rank and then watches three
/// signals until every rank is resolved:
///
///   - the per-worker result pipe: each worker writes exactly one
///     length-prefixed result frame (run finished / tolerated crash /
///     fatal error) before exiting — receiving it marks the rank
///     resolved;
///   - waitpid: a worker that dies before its frame is an unresolved
///     death, classified as a *crash* (WIFSIGNALED / nonzero exit);
///   - heartbeats: a live worker whose shared-memory heartbeat goes stale
///     past TransportTuning::staleAfterMs() is classified as a *hang*,
///     SIGKILLed, and then handled like any other death.
///
/// An unresolved death inside the respawn budget triggers a respawn with
/// exponential backoff (TransportTuning::backoffForAttemptMs): inbound
/// rings are cleared and the child runs the caller's respawn entry
/// instead of the original function. Past the budget the rank is finally
/// dead: with failure tolerance it is marked failed on the transport
/// (peers degrade, run continues), otherwise the whole run is aborted.
///
/// Every lifecycle event (spawn, frame, death taxonomy, respawn,
/// fallback) is appended to the supervisor log.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "casvm/net/transport.hpp"

namespace casvm::net {

class ProcTransport;

class Supervisor {
 public:
  struct Options {
    TransportTuning tuning;
    /// Respawns allowed per rank (0 = never respawn).
    int respawnBudget = 0;
    /// False when no respawn entry exists (then every death is final).
    bool allowRespawn = false;
    /// Mark finally dead ranks failed instead of aborting the run.
    bool tolerateFailures = false;
    /// Lifecycle log destination; empty = stderr.
    std::string logPath;
  };

  /// One length-prefixed message from a worker's result pipe.
  struct Frame {
    char type = 0;  ///< 'R' finished, 'C' tolerated crash, 'E' fatal error
    std::vector<std::byte> payload;
  };

  struct RankOutcome {
    bool resolved = false;  ///< a result frame arrived
    int attempts = 0;       ///< respawns used
    bool sawHang = false;   ///< ever killed for a stale heartbeat
    Frame frame;            ///< valid when resolved
    std::string deathReason;  ///< set when finally dead without a frame
  };

  /// Worker body, run in the forked child. `attempt` is 0 for the first
  /// incarnation and the 1-based respawn count afterwards. Must write one
  /// result frame to `resultFd`; the supervisor _exit()s the child when
  /// it returns (or escapes with an exception).
  using ChildMain = std::function<void(int rank, int attempt, int resultFd)>;

  Supervisor(ProcTransport& transport, Options opts);
  ~Supervisor();

  /// Fork and supervise one worker per rank; returns when every rank is
  /// resolved or finally dead. Must be called from a single-threaded
  /// process (fork safety).
  std::vector<RankOutcome> run(const ChildMain& child);

 private:
  struct Worker;

  void log(const std::string& line);
  void spawn(const ChildMain& child, int rank, int attempt);
  void drainPipe(Worker& w);
  void handleDeath(Worker& w, int status);

  ProcTransport& transport_;
  Options opts_;
  std::vector<Worker> workers_;
  void* logFile_ = nullptr;  // std::FILE*, kept opaque here
};

}  // namespace casvm::net
