#pragma once

/// \file proc_transport.hpp
/// Multi-process delivery backend for casvm::net.
///
/// One anonymous MAP_SHARED arena, created by the supervisor BEFORE any
/// fork, holds everything the worker processes share:
///
///   - a control block: the run-wide abort flag, one heartbeat timestamp
///     per rank (CLOCK_MONOTONIC milliseconds, stamped by each worker's
///     receiver thread), and per-rank failure flags with a fixed-size
///     reason string (written before the flag's release-store, so readers
///     that observe the flag also observe the reason);
///   - the P x P traffic counters, exposed through trafficBytesStorage()
///     so every process records into ONE matrix and the supervisor's
///     final TrafficSnapshot is byte-identical to the thread backend's;
///   - P x P single-producer/single-consumer byte rings (producer = the
///     sender process's main thread, consumer = the receiver process's
///     drain thread). A message is framed as a fixed header {payload
///     bytes, tag, sender virtual time} plus the payload, written in
///     chunks so frames larger than a ring still flow; the reader keeps a
///     per-edge reassembly state machine and never blocks on a partial
///     frame.
///
/// Each worker calls attachWorker(rank) after fork, which starts a drain
/// thread: it moves complete frames from every inbound ring into a local
/// Mailbox (reusing the thread backend's matching, FIFO and fail-source
/// semantics), stamps the rank's heartbeat, and propagates the shared
/// abort/failure flags into the mailbox so blocked receives wake exactly
/// like they do in-process. take() is a bounded wait: a peer that died or
/// hung surfaces as a named timeout error after commTimeoutMs instead of
/// a silent deadlock — this replaces the thread backend's watchdog.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "casvm/net/mailbox.hpp"
#include "casvm/net/transport.hpp"

namespace casvm::net {

class ProcTransport final : public Transport {
 public:
  /// Create the shared arena. Must happen in the supervisor process
  /// before the first fork so every worker inherits the mapping.
  ProcTransport(int size, TransportTuning tuning);
  ~ProcTransport() override;

  ProcTransport(const ProcTransport&) = delete;
  ProcTransport& operator=(const ProcTransport&) = delete;

  int size() const override { return size_; }
  void put(int src, int dst, int tag, Message msg) override;
  Message take(int self, int src, int tag) override;
  void abortAll() override;
  bool aborted() const override;
  void markFailed(int rank, const std::string& reason) override;
  bool rankFailed(int rank) const override;
  std::vector<int> failedRanks() const override;
  std::atomic<std::size_t>* trafficBytesStorage() override;
  std::atomic<std::size_t>* trafficOpsStorage() override;

  const TransportTuning& tuning() const { return tuning_; }

  // --- worker-side lifecycle (call in the child, after fork) ---------------

  /// Start this process's drain thread for `rank`. take() is only valid
  /// between attachWorker() and detachWorker().
  void attachWorker(int rank);

  /// Stop the drain thread. Idempotent; also run by the destructor.
  void detachWorker();

  // --- supervisor-side helpers ---------------------------------------------

  /// Stamp `rank`'s heartbeat now. The supervisor calls this right before
  /// spawning (or respawning) a worker so the staleness clock starts at
  /// the spawn, not at some stale value from a previous incarnation.
  void beatNow(int rank);

  /// Milliseconds since `rank` last stamped its heartbeat.
  long long heartbeatAgeMs(int rank) const;

  /// Drop everything queued toward `rank` (head := tail on its inbound
  /// rings) before a respawn: bytes addressed to the dead incarnation are
  /// undeliverable, and a partially written frame must not be parsed as a
  /// header by the replacement's drain thread.
  void resetInbound(int rank);

 private:
  struct Ring;
  struct Control;
  struct EdgeReader;

  Ring& ring(int src, int dst) const;
  bool drainEdge(int src);
  void drainLoop();
  bool sharedAborted() const;
  bool writeChunked(Ring& ring, int dst, const void* data, std::size_t len);
  std::string failureReason(int rank) const;

  int size_;
  TransportTuning tuning_;

  void* arena_ = nullptr;
  std::size_t arenaBytes_ = 0;
  Control* control_ = nullptr;
  std::atomic<std::size_t>* trafficBytes_ = nullptr;
  std::atomic<std::size_t>* trafficOps_ = nullptr;
  std::byte* ringsBase_ = nullptr;
  std::size_t ringStride_ = 0;

  // Local (per-process) worker state.
  int self_ = -1;
  Mailbox mailbox_;
  std::thread drainThread_;
  std::atomic<bool> stopDrain_{false};
  std::vector<EdgeReader> readers_;
  bool localAborted_ = false;
  std::vector<char> localFailed_;
};

}  // namespace casvm::net
