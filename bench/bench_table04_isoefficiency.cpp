// Reproduces Table IV: isoefficiency functions of 1D/2D mat-vec, Dis-SMO,
// Cascade, DC-SVM — plus CA-SVM, whose removal of communication restores
// W = Omega(P). Prints the asymptotic bounds alongside a numeric W(P)
// sweep from the overhead models, with the fitted growth exponent.

#include <cmath>

#include "bench_common.hpp"
#include "casvm/perf/isoefficiency.hpp"

using namespace casvm;

int main(int argc, char** argv) {
  (void)bench::parseArgs(argc, argv);
  bench::heading("Table IV: isoefficiency scaling comparison",
                 "paper Table IV (analytic) + eqns. (8)-(12)");

  const struct {
    perf::ScalingMethod method;
    const char* name;
    const char* paperComm;
  } rows[] = {
      {perf::ScalingMethod::MatVec1D, "1D Mat-Vec-Mul", "W = Omega(P^2)"},
      {perf::ScalingMethod::MatVec2D, "2D Mat-Vec-Mul", "W = Omega(P)"},
      {perf::ScalingMethod::DisSmo, "Distributed-SMO", "W = Omega(P^3)"},
      {perf::ScalingMethod::Cascade, "Cascade", "W = Omega(P^3)"},
      {perf::ScalingMethod::DcSvm, "DC-SVM", "W = Omega(P^3)"},
      {perf::ScalingMethod::CaSvm, "CA-SVM (this paper)", "W = Omega(P)"},
  };

  perf::IsoParams params;
  TablePrinter table({"method", "paper bound", "model bound", "W(96)",
                      "W(384)", "W(1536)", "fit exponent"});
  for (const auto& row : rows) {
    const double w96 = perf::isoefficiencyW(row.method, 96, params);
    const double w384 = perf::isoefficiencyW(row.method, 384, params);
    const double w1536 = perf::isoefficiencyW(row.method, 1536, params);
    const double exponent = std::log(w1536 / w96) / std::log(1536.0 / 96.0);
    table.addRow({row.name, row.paperComm,
                  perf::isoefficiencyFormula(row.method),
                  TablePrinter::fmtCount(static_cast<long long>(w96)),
                  TablePrinter::fmtCount(static_cast<long long>(w384)),
                  TablePrinter::fmtCount(static_cast<long long>(w1536)),
                  TablePrinter::fmt(exponent, 2)});
  }
  table.print();
  bench::note(
      "W is the minimum problem size (flops) sustaining 50% efficiency; "
      "the fit exponent is d in W ~ P^d over 96..1536 processors. The SVM "
      "baselines scale worse than a 1D matvec; CA-SVM matches the 2D "
      "matvec's W = Omega(P).");
  return 0;
}
