// Reproduces Tables XXI and XXII: weak scaling (time and efficiency) with
// 2,000 samples per node, 96 -> 1536 processors, on the epsilon workload.
// Large-P times come from the calibrated analytic model (see
// bench_table19_20_strong_scaling.cpp and DESIGN.md). Shapes to reproduce:
//   - CA-SVM stays flat (paper: 95.3% efficiency at 16x more processors);
//   - Dis-SMO degrades ~linearly in P (iterations grow with global m);
//   - DC-SVM collapses ~P^2 (its final layer solves all 2000*P samples);
//   - CP-SVM sits between Cascade and CA-SVM.

#include "bench_common.hpp"
#include "casvm/perf/scaling_sim.hpp"

using namespace casvm;

namespace {

struct PaperScaling {
  core::Method method;
  const char* name;
  double timeSeconds[5];  // P = 96, 192, 384, 768, 1536
};

const PaperScaling kPaper[] = {
    {core::Method::DisSmo, "dis-smo", {14.4, 27.9, 51.3, 94.8, 183}},
    {core::Method::Cascade, "cascade", {7.9, 8.5, 11.9, 52.9, 165}},
    {core::Method::DcSvm, "dc-svm", {17.8, 67.9, 247, 1002, 3547}},
    {core::Method::DcFilter, "dc-filter", {16.8, 51.2, 181, 593, 1879}},
    {core::Method::CpSvm, "cp-svm", {13.8, 36.1, 86.8, 165, 202}},
    {core::Method::RaCa, "ca-svm", {6.1, 6.2, 6.2, 6.4, 6.4}},
};

constexpr int kProcs[] = {96, 192, 384, 768, 1536};
constexpr long long kPerNode = 2000;

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::heading("Tables XXI & XXII: weak scaling, 2k samples per node",
                 "paper Tables XXI and XXII (96..1536 processors)");

  const data::NamedDataset nd = bench::loadDataset("epsilon", opts);
  solver::SolverOptions sopts;
  sopts.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  sopts.C = nd.suggestedC;
  const perf::ScalingCalibration cal = perf::calibrate(
      nd.train, sopts,
      {nd.train.rows() / 8, nd.train.rows() / 4, nd.train.rows() / 2},
      opts.seed);

  std::printf("\n[Table XXI: weak scaling time (modeled seconds)]\n");
  TablePrinter timeTable({"method", "P=96", "P=192", "P=384", "P=768",
                          "P=1536", "paper P=96", "paper P=1536"});
  TablePrinter effTable({"method", "P=96", "P=192", "P=384", "P=768",
                         "P=1536", "paper P=1536"});
  for (const PaperScaling& row : kPaper) {
    std::vector<std::string> timeCells{row.name};
    std::vector<std::string> effCells{row.name};
    double t96 = 0.0;
    for (int i = 0; i < 5; ++i) {
      const double t = perf::modeledTrainTime(row.method, cal,
                                              kPerNode * kProcs[i], kProcs[i])
                           .total();
      if (i == 0) t96 = t;
      timeCells.push_back(TablePrinter::fmt(t, t < 10 ? 2 : 1) + "s");
      effCells.push_back(TablePrinter::fmtPercent(t96 / t));  // weak: T96/TP
    }
    timeCells.push_back(TablePrinter::fmt(row.timeSeconds[0], 1) + "s");
    timeCells.push_back(TablePrinter::fmt(row.timeSeconds[4], 1) + "s");
    timeTable.addRow(std::move(timeCells));
    effCells.push_back(TablePrinter::fmtPercent(row.timeSeconds[0] /
                                                row.timeSeconds[4]));
    effTable.addRow(std::move(effCells));
  }
  timeTable.print();
  std::printf("\n[Table XXII: weak scaling efficiency]\n");
  effTable.print();
  bench::note(
      "paper CA-SVM weak efficiency: 98.9/97.8/96.0/95.3%% across the "
      "sweep; Dis-SMO 7.9%%, DC-SVM 0.5%% at P=1536.");
  return 0;
}
