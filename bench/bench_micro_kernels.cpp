// Micro-benchmarks (google-benchmark) for the hot primitives underneath
// every experiment: kernel evaluations (dense and sparse), kernel rows
// through the LRU cache, SMO solves, the partitioners, and the
// message-passing runtime's collectives. These are the constants that the
// scaling model's calibration measures end-to-end.

#include <benchmark/benchmark.h>

#include "casvm/cluster/balanced_kmeans.hpp"
#include "casvm/cluster/fcfs.hpp"
#include "casvm/cluster/kmeans.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/kernel/row_cache.hpp"
#include "casvm/net/comm.hpp"
#include "casvm/solver/smo.hpp"

using namespace casvm;

namespace {

const data::Dataset& denseData() {
  static const data::Dataset ds = [] {
    data::MixtureSpec spec;
    spec.samples = 2000;
    spec.features = 128;
    spec.clusters = 8;
    spec.seed = 7;
    return data::generateMixture(spec);
  }();
  return ds;
}

const data::Dataset& sparseData() {
  static const data::Dataset ds = [] {
    data::MixtureSpec spec;
    spec.samples = 2000;
    spec.features = 512;
    spec.clusters = 8;
    spec.sparsity = 0.9;
    spec.sparseOutput = true;
    spec.seed = 7;
    return data::generateMixture(spec);
  }();
  return ds;
}

void BM_GaussianKernelDense(benchmark::State& state) {
  const kernel::Kernel k(kernel::KernelParams::gaussian(0.5));
  const auto& ds = denseData();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.eval(ds, i % ds.rows(), (i * 7 + 1) % ds.rows()));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaussianKernelDense);

void BM_GaussianKernelSparse(benchmark::State& state) {
  const kernel::Kernel k(kernel::KernelParams::gaussian(0.5));
  const auto& ds = sparseData();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.eval(ds, i % ds.rows(), (i * 7 + 1) % ds.rows()));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaussianKernelSparse);

void BM_KernelRowCached(benchmark::State& state) {
  const kernel::Kernel k(kernel::KernelParams::gaussian(0.5));
  const auto& ds = denseData();
  kernel::RowCache cache(k, ds, 64u << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    // A small working set, like SMO's repeatedly re-selected pairs.
    benchmark::DoNotOptimize(cache.row(i % 16).data());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelRowCached);

void BM_SmoSolve(benchmark::State& state) {
  const auto nd = data::standin("toy", state.range(0) / 2000.0);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  opts.C = nd.suggestedC;
  const solver::SmoSolver solver(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(nd.train).iterations);
  }
  state.SetLabel(std::to_string(nd.train.rows()) + " samples");
}
BENCHMARK(BM_SmoSolve)->Arg(500)->Arg(1000)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_KmeansPartition(benchmark::State& state) {
  const auto& ds = denseData();
  cluster::KMeansOptions opts;
  opts.clusters = 8;
  opts.changeThreshold = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::kmeans(ds, opts).loops);
  }
  state.SetLabel("2000x128, k=8");
}
BENCHMARK(BM_KmeansPartition)->Unit(benchmark::kMillisecond);

void BM_FcfsPartition(benchmark::State& state) {
  const auto& ds = denseData();
  cluster::FcfsOptions opts;
  opts.parts = 8;
  opts.ratioBalanced = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::fcfsPartition(ds, opts).assign.size());
  }
  state.SetLabel("2000x128, P=8, ratio-balanced");
}
BENCHMARK(BM_FcfsPartition)->Unit(benchmark::kMillisecond);

void BM_BalancedKmeansPartition(benchmark::State& state) {
  const auto& ds = denseData();
  cluster::BalancedKMeansOptions opts;
  opts.parts = 8;
  opts.ratioBalanced = true;
  opts.kmeansChangeThreshold = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::balancedKmeans(ds, opts).moves);
  }
  state.SetLabel("2000x128, P=8, ratio-balanced");
}
BENCHMARK(BM_BalancedKmeansPartition)->Unit(benchmark::kMillisecond);

void BM_Allreduce(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  net::Engine engine(P);
  for (auto _ : state) {
    engine.run([](net::Comm& comm) {
      double v = comm.rank();
      for (int i = 0; i < 100; ++i) v = comm.allreduceSum(v);
      benchmark::DoNotOptimize(v);
    });
  }
  state.SetItemsProcessed(state.iterations() * 100);
  state.SetLabel("100 allreduces per run, P=" + std::to_string(P));
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
