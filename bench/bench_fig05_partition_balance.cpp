// Reproduces Fig. 5: K-means partition sizes are wildly imbalanced while
// FCFS partitioning gives every node exactly ~m/P samples. The paper's
// instance is the `face` dataset (160k samples, 8 nodes); we run the face
// stand-in at container scale.

#include <algorithm>

#include "bench_common.hpp"
#include "casvm/cluster/fcfs.hpp"
#include "casvm/cluster/kmeans.hpp"

using namespace casvm;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::heading("Fig. 5: K-means vs FCFS partition sizes",
                 "paper Fig. 5 (face dataset, 8 nodes)");

  const data::NamedDataset nd = bench::loadDataset("face", opts);
  const int P = opts.procs;

  cluster::KMeansOptions km;
  km.clusters = P;
  km.seed = opts.seed;
  km.changeThreshold = 0.001;
  const cluster::Partition kmPart = cluster::kmeans(nd.train, km).partition;

  cluster::FcfsOptions fc;
  fc.parts = P;
  fc.seed = opts.seed;
  const cluster::Partition fcfsPart = cluster::fcfsPartition(nd.train, fc);

  const auto kmSizes = kmPart.sizes();
  const auto fcfsSizes = fcfsPart.sizes();
  TablePrinter table({"node", "K-means samples", "FCFS samples"});
  for (int r = 0; r < P; ++r) {
    table.addRow({std::to_string(r),
                  TablePrinter::fmtCount(static_cast<long long>(
                      kmSizes[static_cast<std::size_t>(r)])),
                  TablePrinter::fmtCount(static_cast<long long>(
                      fcfsSizes[static_cast<std::size_t>(r)]))});
  }
  table.print();

  const auto [kmLo, kmHi] = std::minmax_element(kmSizes.begin(), kmSizes.end());
  const auto [fcLo, fcHi] =
      std::minmax_element(fcfsSizes.begin(), fcfsSizes.end());
  std::printf("K-means largest/smallest: %.2fx   FCFS largest/smallest: %.2fx\n",
              double(*kmHi) / double(std::max<std::size_t>(*kmLo, 1)),
              double(*fcHi) / double(std::max<std::size_t>(*fcLo, 1)));
  std::printf("balanced size m/P = %zu\n", nd.train.rows() / P);
  bench::note(
      "paper: K-means parts ranged widely while FCFS gave every node "
      "exactly 20,000 of 160,000 samples.");
  return 0;
}
