// Ablation: the partitioner ladder behind CA-SVM. The paper's argument is
// that a partition must balance THREE things at once — Euclidean locality
// (accuracy of the routed local models), data volume, and class ratio
// (load) — and that even a random split wins once communication is the
// bottleneck. This bench scores every partitioner on all three axes plus
// the resulting training outcome, on the imbalanced face workload.

#include <algorithm>

#include "bench_common.hpp"
#include "casvm/cluster/balanced_kmeans.hpp"
#include "casvm/cluster/fcfs.hpp"
#include "casvm/cluster/kmeans.hpp"

using namespace casvm;

namespace {

/// Mean squared distance from each sample to its part's center: the
/// locality score (lower = more K-means-like).
double localityScore(const data::Dataset& ds, const cluster::Partition& p) {
  double total = 0.0;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    const auto& c = p.centers[static_cast<std::size_t>(p.assign[i])];
    double self = 0.0;
    for (float v : c) self += double(v) * double(v);
    total += ds.squaredDistanceTo(i, c, self);
  }
  return total / static_cast<double>(ds.rows());
}

/// Max/min per-part positive-count ratio: the load-balance risk factor.
double ratioSkew(const data::Dataset& ds, const cluster::Partition& p) {
  const auto pos = p.positiveCounts(ds);
  const auto sizes = p.sizes();
  double lo = 1e300, hi = 0.0;
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    if (sizes[c] == 0) continue;
    const double r = static_cast<double>(pos[c]) /
                     static_cast<double>(sizes[c]);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  return lo > 0.0 ? hi / lo : 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::heading("Ablation: partitioner quality ladder",
                 "paper §IV (K-means -> BKM -> FCFS -> random)");

  const data::NamedDataset nd = bench::loadDataset("face", opts);
  const int P = opts.procs;

  struct Row {
    std::string name;
    cluster::Partition partition;
  };
  std::vector<Row> rows;

  {
    cluster::KMeansOptions km;
    km.clusters = P;
    km.seed = opts.seed;
    km.changeThreshold = 0.001;
    rows.push_back({"k-means", cluster::kmeans(nd.train, km).partition});
    km.plusPlusInit = true;
    km.restarts = 3;
    rows.push_back({"k-means++ (best of 3)",
                    cluster::kmeans(nd.train, km).partition});
  }
  {
    cluster::BalancedKMeansOptions bkm;
    bkm.parts = P;
    bkm.seed = opts.seed;
    bkm.kmeansChangeThreshold = 0.001;
    rows.push_back({"balanced k-means",
                    cluster::balancedKmeans(nd.train, bkm).partition});
    bkm.ratioBalanced = true;
    rows.push_back({"balanced k-means + ratio",
                    cluster::balancedKmeans(nd.train, bkm).partition});
  }
  {
    cluster::FcfsOptions fc;
    fc.parts = P;
    fc.seed = opts.seed;
    rows.push_back({"fcfs", cluster::fcfsPartition(nd.train, fc)});
    fc.ratioBalanced = true;
    rows.push_back({"fcfs + ratio", cluster::fcfsPartition(nd.train, fc)});
  }
  rows.push_back({"random (ra-ca)",
                  cluster::randomPartition(nd.train, P, opts.seed)});

  TablePrinter table({"partitioner", "locality (mean d^2)",
                      "size imbalance", "class-ratio skew"});
  for (const Row& row : rows) {
    table.addRow({row.name,
                  TablePrinter::fmt(localityScore(nd.train, row.partition), 3),
                  TablePrinter::fmt(row.partition.imbalance(), 2),
                  TablePrinter::fmt(ratioSkew(nd.train, row.partition), 1)});
  }
  table.print();
  bench::note(
      "the ladder trades locality for balance: k-means is most local and "
      "least balanced; random is perfectly balanced with no locality. The "
      "ratio variants collapse the class-ratio skew that Table VI shows "
      "drives load imbalance.");
  return 0;
}
