// Reproduces Table V: the per-layer profile of an 8-node, 4-layer Cascade
// run on a toy dataset — samples, time, iterations and SVs per layer —
// plus the weighted-average node usage of eqn. (13). The phenomenon to
// reproduce: parallelism halves per layer and the single-node bottom layer
// takes a large share of the runtime while 7 of 8 nodes idle.

#include "bench_common.hpp"

using namespace casvm;

int main(int argc, char** argv) {
  bench::Options opts = bench::parseArgs(argc, argv);
  opts.procs = 8;  // Table V is an 8-node, 4-layer profile
  bench::requirePowerOfTwoProcs(opts);
  bench::heading("Table V: profile of 8-node / 4-layer Cascade",
                 "paper Table V + eqn. (13)");

  const data::NamedDataset nd = bench::loadDataset("toy", opts);
  const core::TrainConfig cfg =
      bench::makeConfig(nd, core::Method::Cascade, opts);
  const core::TrainResult res = core::train(nd.train, cfg);

  TablePrinter table({"layer", "nodes", "max samples", "max iters",
                      "total SVs", "layer time (s)", "time share"});
  double totalTime = 0.0;
  for (const auto& layer : res.layers) totalTime += layer.maxSeconds();
  double weightedNodes = 0.0;
  for (const auto& layer : res.layers) {
    table.addRow({std::to_string(layer.layer),
                  std::to_string(layer.nodesUsed),
                  TablePrinter::fmtCount(layer.maxSamples()),
                  TablePrinter::fmtCount(layer.maxIterations()),
                  TablePrinter::fmtCount(layer.totalSVs()),
                  TablePrinter::fmt(layer.maxSeconds(), 4),
                  TablePrinter::fmtPercent(layer.maxSeconds() / totalTime)});
    weightedNodes += layer.maxSeconds() * layer.nodesUsed;
  }
  table.print();

  std::printf(
      "weighted average nodes in use (eqn. 13): %.2f of %d allocated\n",
      weightedNodes / totalTime, opts.procs);
  std::printf("model accuracy on held-out test set: %.1f%%\n",
              100.0 * res.model.accuracy(nd.test));
  bench::note(
      "paper's toy profile: layer times 5.49/1.58/3.34/9.69 s, weighted "
      "average 3.3 of 8 nodes — the bottom layers strand most of the "
      "machine, which motivates CP-SVM/CA-SVM.");
  return 0;
}
