// Reproduces Tables VII and VIII: per-rank sample counts, positive/negative
// splits and SV counts under FCFS partitioning, before and after the
// ratio-balancing refinement. The mechanism the paper isolates: the SVM
// grows one negative SV per positive SV on skewed data, so a rank with
// more positives grows more SVs and does more work — per-class quotas
// equalize the (+)/(-) ratio across ranks and with it the SV counts.

#include "bench_common.hpp"

using namespace casvm;

namespace {

void report(const char* title, const core::TrainResult& res, int P) {
  std::printf("\n[%s]\n", title);
  TablePrinter table({"rank", "samples", "#(+)", "#(-)", "(+)/(-)", "SVs"});
  for (int r = 0; r < P; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    const long long pos = res.positivesPerRank[ur];
    const long long neg = res.samplesPerRank[ur] - pos;
    table.addRow({std::to_string(r),
                  TablePrinter::fmtCount(res.samplesPerRank[ur]),
                  TablePrinter::fmtCount(pos), TablePrinter::fmtCount(neg),
                  TablePrinter::fmt(neg > 0 ? double(pos) / double(neg) : 0.0,
                                    4),
                  TablePrinter::fmtCount(res.svsPerRank[ur])});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::heading("Tables VII & VIII: per-rank class ratios and SV counts",
                 "paper Tables VII and VIII (face dataset, 8 nodes)");

  const data::NamedDataset nd = bench::loadDataset("face", opts);
  std::printf("dataset: %zu samples, %zu positives (%.1f%%)\n",
              nd.train.rows(), nd.train.positives(),
              100.0 * nd.train.positives() / nd.train.rows());

  core::TrainConfig plain = bench::makeConfig(nd, core::Method::FcfsCa, opts);
  plain.ratioBalance = false;
  report("Table VII: FCFS without ratio balance — skewed (+)/(-) per rank",
         core::train(nd.train, plain), opts.procs);

  core::TrainConfig ratio = bench::makeConfig(nd, core::Method::FcfsCa, opts);
  ratio.ratioBalance = true;
  report("Table VIII: FCFS with ratio balance — uniform (+)/(-) per rank",
         core::train(nd.train, ratio), opts.procs);

  bench::note(
      "paper: Table VII ratios ranged 0.0038..0.0841 (22x); Table VIII "
      "pinned every rank near the global 0.037.");
  return 0;
}
