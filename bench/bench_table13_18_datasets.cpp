// Reproduces Tables XIII-XVIII: accuracy, iterations and time (init +
// training) of all eight methods on the six evaluation datasets (adult,
// face, gisette, ijcnn, usps, webspam — synthetic stand-ins at container
// scale; pass --libsvm to use real files). The paper's headline claims to
// reproduce in shape:
//   - the CA-SVM family is the fastest, with 3-16x speedups over Dis-SMO;
//   - accuracy losses versus Dis-SMO stay small (paper: 0-3.6%);
//   - DC-SVM is the slowest (it retrains on everything at the bottom);
//   - CA-SVM also reduces total iterations.

#include "bench_common.hpp"

using namespace casvm;

namespace {

struct PaperRow {
  const char* method;
  double accuracy;    // percent
  long long iters;
  double timeSeconds;
};

struct PaperTable {
  const char* dataset;
  const char* caption;
  PaperRow rows[8];
};

// The paper's Tables XIII-XVIII (Hopper/Edison, full-size datasets).
const PaperTable kPaper[] = {
    {"adult",
     "Table XIII (adult, Hopper)",
     {{"dis-smo", 84.3, 8054, 5.64},
      {"cascade", 83.6, 1323, 1.05},
      {"dc-svm", 83.7, 8699, 17.1},
      {"dc-filter", 84.4, 3317, 2.23},
      {"cp-svm", 83.0, 2497, 1.66},
      {"bkm-ca", 83.3, 1482, 1.61},
      {"fcfs-ca", 83.6, 1621, 1.21},
      {"ra-ca", 83.1, 1160, 0.96}}},
    {"face",
     "Table XIV (face, Hopper)",
     {{"dis-smo", 98.0, 17501, 358},
      {"cascade", 98.0, 2274, 67.0},
      {"dc-svm", 98.0, 20331, 445},
      {"dc-filter", 98.0, 13999, 314},
      {"cp-svm", 98.0, 13993, 311},
      {"bkm-ca", 98.0, 2209, 88.9},
      {"fcfs-ca", 98.0, 2194, 65.3},
      {"ra-ca", 98.0, 2268, 66.4}}},
    {"gisette",
     "Table XV (gisette, Hopper)",
     {{"dis-smo", 97.6, 1959, 8.1},
      {"cascade", 88.3, 1520, 15.9},
      {"dc-svm", 90.9, 4689, 130.7},
      {"dc-filter", 85.7, 1814, 20.1},
      {"cp-svm", 95.8, 521, 8.30},
      {"bkm-ca", 95.8, 452, 4.75},
      {"fcfs-ca", 96.5, 441, 2.48},
      {"ra-ca", 94.0, 487, 2.9}}},
    {"ijcnn",
     "Table XVI (ijcnn, Hopper)",
     {{"dis-smo", 98.7, 30297, 23.8},
      {"cascade", 95.5, 37789, 13.5},
      {"dc-svm", 98.3, 31238, 59.8},
      {"dc-filter", 95.8, 17339, 8.4},
      {"cp-svm", 98.7, 7915, 6.5},
      {"bkm-ca", 98.3, 5004, 3.0},
      {"fcfs-ca", 98.5, 7450, 3.6},
      {"ra-ca", 98.0, 6110, 3.4}}},
    {"usps",
     "Table XVII (usps, Edison)",
     {{"dis-smo", 99.2, 47214, 65.9},
      {"cascade", 98.7, 132503, 969},
      {"dc-svm", 98.7, 83023, 1889},
      {"dc-filter", 99.6, 67880, 242},
      {"cp-svm", 98.9, 7247, 35.7},
      {"bkm-ca", 98.9, 6122, 30.4},
      {"fcfs-ca", 99.0, 6513, 30.1},
      {"ra-ca", 98.9, 6435, 24.5}}},
    {"webspam",
     "Table XVIII (webspam, Hopper)",
     {{"dis-smo", 98.9, 164465, 269.1},
      {"cascade", 96.3, 655808, 2944},
      {"dc-svm", 97.6, 229905, 3093},
      {"dc-filter", 97.2, 108980, 345},
      {"cp-svm", 98.7, 14744, 41.8},
      {"bkm-ca", 98.5, 14208, 24.3},
      {"fcfs-ca", 98.3, 12369, 21.2},
      {"ra-ca", 96.9, 10430, 17.3}}},
};

// The paper tables predate the pbm / dis-smo-shrink rows; methods without
// a published row print a dash instead of indexing past the array.
const PaperRow* findPaperRow(const PaperTable& paper, const std::string& name) {
  for (const PaperRow& row : paper.rows) {
    if (name == row.method) return &row;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::requirePowerOfTwoProcs(opts);
  bench::heading("Tables XIII-XVIII: all methods x 6 datasets",
                 "paper Tables XIII-XVIII");

  double speedupSum = 0.0;
  double accLossSum = 0.0;
  int datasets = 0;

  for (const PaperTable& paper : kPaper) {
    const data::NamedDataset nd = bench::loadDataset(paper.dataset, opts);
    std::printf("\n[%s]  stand-in: %zu train / %zu test samples, %zu features\n",
                paper.caption, nd.train.rows(), nd.test.rows(),
                nd.train.cols());

    TablePrinter table({"method", "accuracy", "iterations",
                        "time (init, train)", "paper acc", "paper iters",
                        "paper time"});
    double disSmoTime = 0.0, disSmoAcc = 0.0, raTime = 0.0, raAcc = 0.0;
    for (core::Method method : core::allMethods()) {
      const core::TrainConfig cfg = bench::makeConfig(nd, method, opts);
      const core::TrainResult res = core::train(nd.train, cfg);
      const double acc = res.model.accuracy(nd.test);
      const double total = res.initSeconds + res.trainSeconds;
      const PaperRow* pr = findPaperRow(paper, methodName(method));
      table.addRow(
          {methodName(method), TablePrinter::fmtPercent(acc),
           TablePrinter::fmtCount(res.totalIterations),
           TablePrinter::fmt(total, 3) + "s (" +
               TablePrinter::fmt(res.initSeconds, 3) + ", " +
               TablePrinter::fmt(res.trainSeconds, 3) + ")",
           pr ? TablePrinter::fmt(pr->accuracy, 1) + "%" : "-",
           pr ? TablePrinter::fmtCount(pr->iters) : "-",
           pr ? TablePrinter::fmt(pr->timeSeconds, 1) + "s" : "-"});
      if (method == core::Method::DisSmo) {
        disSmoTime = total;
        disSmoAcc = acc;
      }
      if (method == core::Method::RaCa) {
        raTime = total;
        raAcc = acc;
      }
    }
    table.print();
    const double speedup = disSmoTime / std::max(raTime, 1e-9);
    std::printf("CA-SVM (ra-ca) speedup over dis-smo: %.1fx, accuracy delta: %+.1f%%\n",
                speedup, 100.0 * (raAcc - disSmoAcc));
    speedupSum += speedup;
    accLossSum += std::max(0.0, disSmoAcc - raAcc);
    ++datasets;
  }

  std::printf(
      "\naverage CA-SVM speedup over Dis-SMO: %.1fx (paper: 7x average, "
      "3-16x range)\naverage accuracy loss: %.1f%% (paper: 1.3%% average, "
      "0-3.6%% range)\n",
      speedupSum / datasets, 100.0 * accLossSum / datasets);
  return 0;
}
