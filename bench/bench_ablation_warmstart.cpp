// Ablation: the Cascade warm start (passing each layer's alphas to the
// next). The paper credits it with "significantly reduc[ing] the
// iterations for convergence" when SV sets merge; this bench measures
// exactly that by running Cascade and DC-Filter with and without alpha
// passing on the same data.

#include "bench_common.hpp"

using namespace casvm;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::requirePowerOfTwoProcs(opts);
  bench::heading("Ablation: Cascade warm start (alpha passing)",
                 "paper §II-C / §III-B (design choice, no table)");

  const data::NamedDataset nd = bench::loadDataset("ijcnn", opts);

  TablePrinter table({"method", "warm start", "total iters",
                      "merged-layer iters", "train time (s)", "accuracy"});
  for (core::Method method : {core::Method::Cascade, core::Method::DcFilter}) {
    for (bool warm : {true, false}) {
      core::TrainConfig cfg = bench::makeConfig(nd, method, opts);
      cfg.treeWarmStart = warm;
      const core::TrainResult res = core::train(nd.train, cfg);
      long long mergedIters = 0;
      for (const auto& layer : res.layers) {
        if (layer.layer > 1) mergedIters += layer.maxIterations();
      }
      table.addRow({methodName(method), warm ? "yes" : "no",
                    TablePrinter::fmtCount(res.totalIterations),
                    TablePrinter::fmtCount(mergedIters),
                    TablePrinter::fmt(res.trainSeconds, 3),
                    TablePrinter::fmtPercent(res.model.accuracy(nd.test))});
    }
  }
  table.print();
  bench::note(
      "the merged-layer column isolates layers 2+, where the warm start "
      "applies; expect a clear iteration reduction with no accuracy cost.");
  return 0;
}
