// Reproduces Table III: SMO iteration counts grow roughly linearly with
// the number of training samples, on the epsilon and forest stand-ins.
//
// This is the second half of the paper's P^3-isoefficiency argument: the
// per-iteration cost already behaves like a distributed matvec, and on top
// of that the iteration count itself scales with m.

#include "bench_common.hpp"
#include "casvm/solver/smo.hpp"
#include "casvm/support/rng.hpp"

using namespace casvm;

namespace {

// Paper-reported iterations (Table III) for reference printing.
// Sample counts there are 10k..320k; we sweep a scaled-down ladder with
// the same x2 progression and check the same growth law.
constexpr long long kPaperEpsilon[] = {4682, 8488, 15065, 26598, 49048, 90320};
constexpr long long kPaperForest[] = {3057, 6172, 11495, 22001, 47892, 103404};

void sweep(const std::string& name, const long long* paper,
           const bench::Options& opts) {
  // One big pool; nested subsets so each size extends the previous.
  bench::Options pool = opts;
  pool.scale = 2.0 * opts.scale;
  const data::NamedDataset nd = bench::loadDataset(name, pool);

  solver::SolverOptions sopts;
  sopts.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  sopts.C = nd.suggestedC;

  TablePrinter table({"samples", "iterations", "iters/sample",
                      "growth vs prev", "paper iters (10k..320k)",
                      "paper growth"});
  Rng rng(opts.seed);
  std::vector<std::size_t> order(nd.train.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);

  long long prev = 0;
  std::size_t size = nd.train.rows() / 32;
  for (int step = 0; step < 6; ++step, size *= 2) {
    if (size > nd.train.rows()) break;
    const data::Dataset sub = nd.train.subset(
        std::span<const std::size_t>(order.data(), size));
    if (sub.positives() == 0 || sub.negatives() == 0) continue;
    const solver::SolverResult res = solver::SmoSolver(sopts).solve(sub);
    const auto iters = static_cast<long long>(res.iterations);
    const double paperGrowth =
        step == 0 ? 0.0
                  : static_cast<double>(paper[step]) / paper[step - 1];
    table.addRow({TablePrinter::fmtCount(static_cast<long long>(size)),
                  TablePrinter::fmtCount(iters),
                  TablePrinter::fmt(double(iters) / double(size), 3),
                  step == 0 ? "-" : TablePrinter::fmt(double(iters) / prev, 2),
                  TablePrinter::fmtCount(paper[step]),
                  step == 0 ? "-" : TablePrinter::fmt(paperGrowth, 2)});
    prev = iters;
  }
  std::printf("\n[%s stand-in]\n", name.c_str());
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::heading("Table III: SMO iterations vs training-set size",
                 "paper Table III (epsilon and forest datasets)");
  bench::note(
      "shape target: doubling m roughly doubles the iteration count "
      "(growth factor ~1.8-2.2 per step, as in the paper).");
  sweep("epsilon", kPaperEpsilon, opts);
  sweep("forest", kPaperForest, opts);
  return 0;
}
