#pragma once

// Shared scaffolding for the paper-reproduction benches: command-line
// options, the standard train-config builder, and headline printing.
//
// Every bench accepts:
//   --scale <f>    dataset scale factor (default 1.0; see data/registry.hpp)
//   --procs <P>    simulated ranks (default 8, the paper's per-table setup)
//   --seed <s>     RNG seed (default 42)
//   --libsvm <f>   train on a real LIBSVM file instead of the stand-in
//   --libsvm-test <f>  matching test file (required with --libsvm)
//   --check        turn the bench's printed claims into hard assertions
//                  (exit 1 on violation); used by CI

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "casvm/core/train.hpp"
#include "casvm/data/io.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/support/table.hpp"

namespace casvm::bench {

struct Options {
  double scale = 1.0;
  int procs = 8;
  std::uint64_t seed = 42;
  std::string libsvmTrain;
  std::string libsvmTest;
  bool check = false;
};

inline Options parseArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scale") == 0) {
      opts.scale = std::atof(next("--scale"));
    } else if (std::strcmp(argv[i], "--procs") == 0) {
      opts.procs = std::atoi(next("--procs"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--libsvm") == 0) {
      opts.libsvmTrain = next("--libsvm");
    } else if (std::strcmp(argv[i], "--libsvm-test") == 0) {
      opts.libsvmTest = next("--libsvm-test");
    } else if (std::strcmp(argv[i], "--check") == 0) {
      opts.check = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "options: --scale <f> --procs <P> --seed <s> "
          "--libsvm <train> --libsvm-test <test> --check\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return opts;
}

/// Load a stand-in (or the user's real LIBSVM files, if given).
inline data::NamedDataset loadDataset(const std::string& name,
                                      const Options& opts) {
  if (!opts.libsvmTrain.empty()) {
    data::NamedDataset nd;
    nd.name = opts.libsvmTrain;
    nd.train = data::readLibsvmFile(opts.libsvmTrain);
    nd.test = opts.libsvmTest.empty()
                  ? data::readLibsvmFile(opts.libsvmTrain)
                  : data::readLibsvmFile(opts.libsvmTest, nd.train.cols());
    nd.suggestedGamma = 1.0 / static_cast<double>(nd.train.cols());
    nd.suggestedC = 1.0;
    return nd;
  }
  return data::standin(name, opts.scale, opts.seed);
}

/// The standard paper-experiment configuration for one method.
inline core::TrainConfig makeConfig(const data::NamedDataset& nd,
                                    core::Method method,
                                    const Options& opts) {
  core::TrainConfig cfg;
  cfg.method = method;
  cfg.processes = opts.procs;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  cfg.solver.C = nd.suggestedC;
  cfg.seed = opts.seed;
  return cfg;
}

/// Tree methods handle ragged (non-power-of-two) rank counts, but the
/// paper's tables are all reported at power-of-two P; warn when a bench
/// meant to reproduce them runs off-grid.
inline void requirePowerOfTwoProcs(const Options& opts) {
  if (opts.procs < 1) {
    std::fprintf(stderr, "--procs must be >= 1 (got %d)\n", opts.procs);
    std::exit(2);
  }
  if ((opts.procs & (opts.procs - 1)) != 0) {
    std::fprintf(stderr,
                 "note: --procs %d is not a power of two; the paper reports "
                 "tree-method tables at power-of-two P\n",
                 opts.procs);
  }
}

inline void heading(const std::string& title, const std::string& paperRef) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paperRef.c_str());
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

}  // namespace casvm::bench
