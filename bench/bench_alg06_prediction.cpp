// Extra experiment: Algorithm 6's prediction process. The paper asserts
// that routed prediction needs only "a little communication" because "both
// the data centers and test samples are pretty small compared with the
// training samples". This bench quantifies that: for each partitioned
// method, the bytes the distributed prediction moves versus the training
// data volume and the training-phase traffic, plus the accuracy parity
// with in-process prediction.

#include "bench_common.hpp"
#include "casvm/core/predict.hpp"

using namespace casvm;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::heading("Algorithm 6: distributed prediction cost",
                 "paper §IV-B (prediction process remark)");

  const data::NamedDataset nd = bench::loadDataset("ijcnn", opts);
  std::printf("train volume: %s, test volume: %s (%zu samples)\n",
              TablePrinter::fmtBytes(
                  static_cast<double>(nd.train.sampleBytes()))
                  .c_str(),
              TablePrinter::fmtBytes(static_cast<double>(nd.test.sampleBytes()))
                  .c_str(),
              nd.test.rows());

  TablePrinter table({"method", "train comm", "predict comm",
                      "predict/train data", "accuracy (local)",
                      "accuracy (routed)"});
  for (core::Method method : {core::Method::CpSvm, core::Method::BkmCa,
                              core::Method::FcfsCa, core::Method::RaCa}) {
    const core::TrainConfig cfg = bench::makeConfig(nd, method, opts);
    const core::TrainResult trained = core::train(nd.train, cfg);
    const core::DistributedPredictResult routed =
        core::distributedPredict(trained.model, nd.test);
    table.addRow(
        {methodName(method),
         TablePrinter::fmtBytes(
             static_cast<double>(trained.runStats.traffic.totalBytes())),
         TablePrinter::fmtBytes(
             static_cast<double>(routed.runStats.traffic.totalBytes())),
         TablePrinter::fmt(
             static_cast<double>(routed.runStats.traffic.totalBytes()) /
                 static_cast<double>(nd.train.sampleBytes()),
             3),
         TablePrinter::fmtPercent(trained.model.accuracy(nd.test)),
         TablePrinter::fmtPercent(routed.accuracy)});
  }
  table.print();
  bench::note(
      "routed prediction moves only the routed test samples out and one "
      "byte per label back — a small fraction of the training volume, and "
      "bit-identical accuracy to local prediction.");
  return 0;
}
