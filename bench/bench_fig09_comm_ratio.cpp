// Reproduces Fig. 9: the ratio of communication time to computation time
// for all approaches, including both CA-SVM placements — casvm1 (data
// staged on one node, so the random parts must be scattered) and casvm2
// (data born distributed: zero communication). Times are virtual seconds:
// per-rank CPU plus alpha-beta-modeled transfer time, maxed over ranks.

#include <cmath>
#include <cstdio>

#include "casvm/obs/trace.hpp"
#include "bench_common.hpp"

using namespace casvm;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::requirePowerOfTwoProcs(opts);
  bench::heading("Fig. 9: communication-to-computation time ratio",
                 "paper Fig. 9 (toy dataset, 8 nodes)");

  struct Row {
    std::string label;
    core::Method method;
    bool rootData;
  };
  const Row rows[] = {
      {"dis-smo", core::Method::DisSmo, false},
      {"dis-smo-shrink", core::Method::DisSmoShrink, false},
      {"pbm", core::Method::Pbm, false},
      {"cascade", core::Method::Cascade, false},
      {"dc-svm", core::Method::DcSvm, false},
      {"dc-filter", core::Method::DcFilter, false},
      {"cp-svm", core::Method::CpSvm, false},
      {"casvm1 (data on root)", core::Method::RaCa, true},
      {"casvm2 (data distributed)", core::Method::RaCa, false},
  };

  const data::NamedDataset nd = bench::loadDataset("toy", opts);

  TablePrinter table({"method", "compute (s)", "comm (s)", "comm share",
                      "trace share", "comm bytes"});
  // Cross-check: each run also records a full trace, and the comm share
  // derived from the trace spans must agree with the virtual-clock share.
  // Trace spans include a sliver of in-span compute (packing/memcpy), so
  // they overestimate slightly; 5 percentage points bounds that slack.
  constexpr double kShareTolerance = 0.05;
  double worstGap = 0.0;
  std::string worstLabel;
  for (const Row& row : rows) {
    core::TrainConfig cfg = bench::makeConfig(nd, row.method, opts);
    cfg.raInitialDataOnRoot = row.rootData;
    obs::TraceRecorder recorder;
    cfg.trace = &recorder;
    const core::TrainResult res = core::train(nd.train, cfg);
    const double compute = res.runStats.maxComputeSeconds();
    const double comm = res.runStats.maxCommSeconds();
    double traceComm = 0.0;
    for (int r = 0; r < res.runStats.size; ++r) {
      traceComm = std::max(traceComm, recorder.commSeconds(r));
    }
    const double clockShare = comm / (comm + compute);
    const double traceShare = traceComm / (traceComm + compute);
    const double gap = std::abs(traceShare - clockShare);
    if (gap > worstGap) {
      worstGap = gap;
      worstLabel = row.label;
    }
    table.addRow({row.label, TablePrinter::fmt(compute, 4),
                  TablePrinter::fmt(comm, 4),
                  TablePrinter::fmtPercent(clockShare),
                  TablePrinter::fmtPercent(traceShare),
                  TablePrinter::fmtBytes(static_cast<double>(
                      res.runStats.traffic.totalBytes()))});
  }
  table.print();
  bench::note(
      "paper: Dis-SMO spends the majority of its time communicating; "
      "casvm1's only communication is the initial scatter; casvm2 "
      "communicates nothing.");
  if (worstGap > kShareTolerance) {
    std::fprintf(stderr,
                 "FAIL: trace-derived comm share disagrees with the "
                 "virtual-clock share by %.3f (> %.2f) for %s\n",
                 worstGap, kShareTolerance, worstLabel.c_str());
    return 1;
  }
  return 0;
}
