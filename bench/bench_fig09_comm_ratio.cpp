// Reproduces Fig. 9: the ratio of communication time to computation time
// for all approaches, including both CA-SVM placements — casvm1 (data
// staged on one node, so the random parts must be scattered) and casvm2
// (data born distributed: zero communication). Times are virtual seconds:
// per-rank CPU plus alpha-beta-modeled transfer time, maxed over ranks.

#include "bench_common.hpp"

using namespace casvm;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::requirePowerOfTwoProcs(opts);
  bench::heading("Fig. 9: communication-to-computation time ratio",
                 "paper Fig. 9 (toy dataset, 8 nodes)");

  struct Row {
    std::string label;
    core::Method method;
    bool rootData;
  };
  const Row rows[] = {
      {"dis-smo", core::Method::DisSmo, false},
      {"cascade", core::Method::Cascade, false},
      {"dc-svm", core::Method::DcSvm, false},
      {"dc-filter", core::Method::DcFilter, false},
      {"cp-svm", core::Method::CpSvm, false},
      {"casvm1 (data on root)", core::Method::RaCa, true},
      {"casvm2 (data distributed)", core::Method::RaCa, false},
  };

  const data::NamedDataset nd = bench::loadDataset("toy", opts);

  TablePrinter table({"method", "compute (s)", "comm (s)", "comm share",
                      "comm bytes"});
  for (const Row& row : rows) {
    core::TrainConfig cfg = bench::makeConfig(nd, row.method, opts);
    cfg.raInitialDataOnRoot = row.rootData;
    const core::TrainResult res = core::train(nd.train, cfg);
    const double compute = res.runStats.maxComputeSeconds();
    const double comm = res.runStats.maxCommSeconds();
    table.addRow({row.label, TablePrinter::fmt(compute, 4),
                  TablePrinter::fmt(comm, 4),
                  TablePrinter::fmtPercent(comm / (comm + compute)),
                  TablePrinter::fmtBytes(static_cast<double>(
                      res.runStats.traffic.totalBytes()))});
  }
  table.print();
  bench::note(
      "paper: Dis-SMO spends the majority of its time communicating; "
      "casvm1's only communication is the initial scatter; casvm2 "
      "communicates nothing.");
  return 0;
}
