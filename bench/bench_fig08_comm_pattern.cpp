// Reproduces Fig. 8: the P x P point-to-point communication pattern of all
// six approaches on the same toy dataset, 8 nodes. The paper renders these
// as 3-D bar charts; here each pattern is an aligned byte matrix
// (sender row -> receiver column). The shapes to recognize:
//   - Dis-SMO: dense all-to-all haze of small messages (tree edges every
//     iteration);
//   - Cascade: sparse tree edges 1->0, 2->0/3->2 style pairs only;
//   - DC-SVM / DC-Filter / CP-SVM: K-means allreduce trees plus an
//     all-to-all redistribution band;
//   - CA-SVM: an empty matrix.

#include "bench_common.hpp"

using namespace casvm;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::requirePowerOfTwoProcs(opts);
  bench::heading("Fig. 8: communication patterns (P x P byte matrices)",
                 "paper Fig. 8 (toy dataset, 8 nodes)");

  const data::NamedDataset nd = bench::loadDataset("toy", opts);

  const core::Method methods[] = {core::Method::DisSmo, core::Method::Cascade,
                                  core::Method::DcSvm, core::Method::DcFilter,
                                  core::Method::CpSvm, core::Method::RaCa};
  for (core::Method method : methods) {
    const core::TrainConfig cfg = bench::makeConfig(nd, method, opts);
    const core::TrainResult res = core::train(nd.train, cfg);
    std::printf("\n[%s]  total %s in %s messages\n",
                methodName(method).c_str(),
                TablePrinter::fmtBytes(
                    static_cast<double>(res.runStats.traffic.totalBytes()))
                    .c_str(),
                TablePrinter::fmtCount(
                    static_cast<long long>(res.runStats.traffic.totalOps()))
                    .c_str());
    std::printf("%s", res.runStats.traffic.heatmap().c_str());
  }
  return 0;
}
