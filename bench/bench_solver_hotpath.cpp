// Solver hot-path benchmark — the first point of the BENCH_*.json perf
// trajectory (see README "Benchmarks").
//
// Runs the single-node SMO solver over a fixed matrix of configurations:
// seeded epsilon/ijcnn stand-ins, m in {2k, 8k}, linear + gaussian kernels,
// first-order (WSS-1) and second-order working-set selection, shrinking on
// and off. Emits BENCH_SOLVER.json with iterations, wall seconds, kernel
// rows computed and cache hit rate per configuration.
//
// Iteration counts and objectives are deterministic in the seed, so runs of
// this bench on two builds are directly comparable: a hot-path change that
// claims "same math, less time" must keep `iterations` and `objective`
// identical while `wall_seconds` drops.
//
// Options:
//   --smoke      tiny problem sizes (CI): m in {256, 1024}
//   --seed <s>   dataset RNG seed (default 42)
//   --out <f>    output path (default BENCH_SOLVER.json)

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "casvm/data/registry.hpp"
#include "casvm/solver/smo.hpp"

namespace {

struct Options {
  bool smoke = false;
  std::uint64_t seed = 42;
  std::string out = "BENCH_SOLVER.json";
};

Options parseArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opts.out = next("--out");
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      // Accepted for smoke-harness uniformity; sizes are fixed by design.
      (void)next("--scale");
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("options: --smoke --seed <s> --out <f>\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return opts;
}

struct Record {
  std::string dataset;
  std::size_t m = 0;
  std::string kernel;
  std::string selection;
  bool shrinking = false;
  casvm::solver::SolverResult result;
};

double hitRate(const casvm::solver::SolverResult& r) {
  const std::size_t total = r.kernelRowsComputed + r.kernelRowHits;
  return total == 0 ? 0.0
                    : static_cast<double>(r.kernelRowHits) /
                          static_cast<double>(total);
}

void writeJson(const Options& opts, const std::vector<Record>& records) {
  std::FILE* f = std::fopen(opts.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", opts.out.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"solver_hotpath\",\n");
  std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", opts.seed);
  std::fprintf(f, "  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f, "    {\"dataset\": \"%s\", \"m\": %zu, ",
                 r.dataset.c_str(), r.m);
    std::fprintf(f, "\"kernel\": \"%s\", \"selection\": \"%s\", ",
                 r.kernel.c_str(), r.selection.c_str());
    std::fprintf(f, "\"shrinking\": %s, ", r.shrinking ? "true" : "false");
    std::fprintf(f, "\"iterations\": %zu, \"converged\": %s, ",
                 r.result.iterations, r.result.converged ? "true" : "false");
    std::fprintf(f, "\"objective\": %.12g, \"wall_seconds\": %.6f, ",
                 r.result.objective, r.result.seconds);
    std::fprintf(f, "\"kernel_rows_computed\": %zu, \"cache_hits\": %zu, ",
                 r.result.kernelRowsComputed, r.result.kernelRowHits);
    std::fprintf(f, "\"cache_hit_rate\": %.4f}%s\n", hitRate(r.result),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu configs)\n", opts.out.c_str(), records.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casvm;
  const Options opts = parseArgs(argc, argv);

  // Base stand-in sizes at scale 1.0 (see data/registry.cpp).
  struct DatasetSpec {
    const char* name;
    std::size_t baseRows;
  };
  const std::vector<DatasetSpec> datasets = {{"epsilon", 4000},
                                             {"ijcnn", 5000}};
  const std::vector<std::size_t> sizes =
      opts.smoke ? std::vector<std::size_t>{256, 1024}
                 : std::vector<std::size_t>{2000, 8000};

  std::printf("%-8s %6s %-9s %-12s %-6s %9s %5s %10s %8s %7s\n", "dataset",
              "m", "kernel", "selection", "shrink", "iters", "conv",
              "objective", "seconds", "hit%");
  std::vector<Record> records;
  for (const DatasetSpec& spec : datasets) {
    for (std::size_t m : sizes) {
      const double scale =
          static_cast<double>(m) / static_cast<double>(spec.baseRows);
      const data::NamedDataset nd = data::standin(spec.name, scale, opts.seed);
      for (bool gaussian : {false, true}) {
        for (solver::Selection sel :
             {solver::Selection::FirstOrder, solver::Selection::SecondOrder}) {
          for (bool shrinking : {false, true}) {
            solver::SolverOptions so;
            so.kernel = gaussian
                            ? kernel::KernelParams::gaussian(nd.suggestedGamma)
                            : kernel::KernelParams::linear();
            so.C = nd.suggestedC;
            so.selection = sel;
            so.shrinking = shrinking;
            // Bound the linear-kernel runs on non-separable data; the JSON
            // records converged=false when the cap bites.
            so.maxIterations = opts.smoke ? 20000 : 50000;
            const solver::SolverResult res =
                solver::SmoSolver(so).solve(nd.train);
            Record rec{spec.name,
                       nd.train.rows(),
                       gaussian ? "gaussian" : "linear",
                       sel == solver::Selection::FirstOrder ? "first-order"
                                                            : "second-order",
                       shrinking,
                       res};
            std::printf("%-8s %6zu %-9s %-12s %-6s %9zu %5s %10.4f %8.3f %6.1f%%\n",
                        rec.dataset.c_str(), rec.m, rec.kernel.c_str(),
                        rec.selection.c_str(), shrinking ? "on" : "off",
                        res.iterations, res.converged ? "yes" : "no",
                        res.objective, res.seconds, 100.0 * hitRate(res));
            std::fflush(stdout);
            records.push_back(std::move(rec));
          }
        }
      }
    }
  }
  writeJson(opts, records);
  return 0;
}
