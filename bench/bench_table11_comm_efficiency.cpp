// Reproduces Table XI: communication efficiency — total bytes, number of
// communication operations, and bytes per operation for each method.
// The phenomenon: Dis-SMO issues hundreds of thousands of tiny (~100B)
// messages, while the partitioned methods move fewer, far larger messages;
// CA-SVM sends nothing at all.

#include "bench_common.hpp"

using namespace casvm;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::requirePowerOfTwoProcs(opts);
  bench::heading("Table XI: efficiency of communication",
                 "paper Table XI (ijcnn dataset, 8 nodes)");

  const data::NamedDataset nd = bench::loadDataset("ijcnn", opts);

  struct Entry {
    core::Method method;
    const char* paperRow;  // dash for methods the paper did not measure
  };
  const Entry entries[] = {
      {core::Method::DisSmo, "34MB / 335,186 ops / 101B"},
      {core::Method::DisSmoShrink, "-"},
      {core::Method::Pbm, "-"},
      {core::Method::Cascade, "8MB / 56 ops / 150,200B"},
      {core::Method::DcSvm, "29MB / 80 ops / 360,734B"},
      {core::Method::DcFilter, "18MB / 80 ops / 220,449B"},
      {core::Method::CpSvm, "17MB / 24 ops / 709,644B"},
      {core::Method::RaCa, "0MB / 0 ops / n/a"},
  };

  TablePrinter table({"method", "amount", "operations", "amount/operation",
                      "paper (amount/ops/per-op)"});
  for (const Entry& entry : entries) {
    const core::TrainConfig cfg = bench::makeConfig(nd, entry.method, opts);
    const core::TrainResult res = core::train(nd.train, cfg);
    const auto& traffic = res.runStats.traffic;
    table.addRow(
        {methodName(entry.method),
         TablePrinter::fmtBytes(static_cast<double>(traffic.totalBytes())),
         TablePrinter::fmtCount(static_cast<long long>(traffic.totalOps())),
         traffic.totalOps() == 0
             ? "n/a"
             : TablePrinter::fmtBytes(traffic.bytesPerOp()),
         entry.paperRow});
  }
  table.print();
  bench::note(
      "operation counts here are point-to-point messages (collectives "
      "decompose into their tree edges), so absolute counts differ from "
      "MPI-call counts; the orders-of-magnitude contrast is the result.");
  return 0;
}
