// Low-rank backend benchmark — exact vs Nyström training at scale (see
// README "Training at scale" and DESIGN.md §12).
//
// Trains the same partitioned run twice on an epsilon-shaped stand-in
// generated through the chunked (million-sample-safe) generator: once with
// the exact kernel backend and once with `--backend nystrom`, then reports
// wall-clock speedup and held-out accuracy delta in BENCH_LOWRANK.json.
//
// The Nyström run wins because an approximate kernel row is a tile-dot
// over r ≤ L columns with no transcendental per entry, while the exact
// Gaussian row pays an n-wide dot plus an exp() per entry — so the gap
// widens with the feature count and with the row volume the solver pulls.
//
// Options:
//   --samples <m>        training rows (default 100000; --smoke: 4000)
//   --landmarks <L>      Nyström landmarks per cluster factor (default 64)
//   --procs <p>          simulated ranks (default 8)
//   --method <name>      partitioned method (default bkm-ca)
//   --seed <s>           dataset RNG seed (default 42)
//   --out <f>            output path (default BENCH_LOWRANK.json)
//   --smoke              small sizes for CI smoke runs
//   --check              gate: exit 1 unless speedup >= --min-speedup and
//                        accuracy delta <= --max-acc-delta
//   --min-speedup <x>    required wall-clock ratio exact/nystrom (default 5)
//   --max-acc-delta <d>  allowed held-out accuracy loss (default 0.01)

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "casvm/core/train.hpp"
#include "casvm/data/registry.hpp"

namespace {

struct Options {
  std::size_t samples = 100000;
  std::size_t landmarks = 64;
  int procs = 8;
  std::string method = "bkm-ca";
  std::uint64_t seed = 42;
  std::string out = "BENCH_LOWRANK.json";
  bool smoke = false;
  bool check = false;
  double minSpeedup = 5.0;
  double maxAccDelta = 0.01;
};

Options parseArgs(int argc, char** argv) {
  Options opts;
  bool samplesSet = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--samples") == 0) {
      opts.samples = static_cast<std::size_t>(std::atoll(next("--samples")));
      samplesSet = true;
    } else if (std::strcmp(argv[i], "--landmarks") == 0) {
      opts.landmarks =
          static_cast<std::size_t>(std::atoll(next("--landmarks")));
    } else if (std::strcmp(argv[i], "--procs") == 0) {
      opts.procs = std::atoi(next("--procs"));
    } else if (std::strcmp(argv[i], "--method") == 0) {
      opts.method = next("--method");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opts.out = next("--out");
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      opts.check = true;
    } else if (std::strcmp(argv[i], "--min-speedup") == 0) {
      opts.minSpeedup = std::atof(next("--min-speedup"));
    } else if (std::strcmp(argv[i], "--max-acc-delta") == 0) {
      opts.maxAccDelta = std::atof(next("--max-acc-delta"));
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      // Accepted for smoke-harness uniformity; use --samples instead.
      (void)next("--scale");
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "options: --samples <m> --landmarks <L> --procs <p> "
          "--method <name> --seed <s> --out <f> --smoke --check "
          "--min-speedup <x> --max-acc-delta <d>\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (opts.smoke && !samplesSet) opts.samples = 4000;
  return opts;
}

struct RunStats {
  double wallSeconds = 0.0;
  double accuracy = 0.0;
  long long iterations = 0;
  std::size_t supportVectors = 0;
};

RunStats runOnce(const casvm::data::NamedDataset& nd,
                 const casvm::core::TrainConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  const casvm::core::TrainResult res = casvm::core::train(nd.train, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  RunStats stats;
  stats.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
  stats.accuracy = res.model.accuracy(nd.test);
  stats.iterations = res.totalIterations;
  stats.supportVectors = res.model.totalSupportVectors();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casvm;
  const Options opts = parseArgs(argc, argv);

  std::printf("generating epsilon stand-in: %zu train rows (chunked)\n",
              opts.samples);
  std::fflush(stdout);
  const data::NamedDataset nd =
      data::standinSized("epsilon", opts.samples, opts.seed);

  core::TrainConfig cfg;
  cfg.method = core::methodFromName(opts.method);
  cfg.processes = opts.procs;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  cfg.solver.C = nd.suggestedC;

  std::printf("exact backend: training %zu x %zu on %d ranks (%s)...\n",
              nd.train.rows(), nd.train.cols(), opts.procs,
              opts.method.c_str());
  std::fflush(stdout);
  const RunStats exact = runOnce(nd, cfg);
  std::printf("  %.3fs, accuracy %.4f, %lld iterations, %zu SVs\n",
              exact.wallSeconds, exact.accuracy, exact.iterations,
              exact.supportVectors);

  cfg.solverBackend = core::SolverBackend::Nystrom;
  cfg.nystromLandmarks = opts.landmarks;
  std::printf("nystrom backend: %zu landmarks per cluster factor...\n",
              opts.landmarks);
  std::fflush(stdout);
  const RunStats low = runOnce(nd, cfg);
  std::printf("  %.3fs, accuracy %.4f, %lld iterations, %zu SVs\n",
              low.wallSeconds, low.accuracy, low.iterations,
              low.supportVectors);

  const double speedup =
      low.wallSeconds > 0.0 ? exact.wallSeconds / low.wallSeconds : 0.0;
  const double accDelta = exact.accuracy - low.accuracy;
  std::printf("speedup %.2fx, accuracy delta %+.4f\n", speedup, accDelta);

  std::FILE* f = std::fopen(opts.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", opts.out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"lowrank\",\n");
  std::fprintf(f, "  \"dataset\": \"epsilon\",\n");
  std::fprintf(f, "  \"samples\": %zu,\n", nd.train.rows());
  std::fprintf(f, "  \"features\": %zu,\n", nd.train.cols());
  std::fprintf(f, "  \"test_samples\": %zu,\n", nd.test.rows());
  std::fprintf(f, "  \"method\": \"%s\",\n", opts.method.c_str());
  std::fprintf(f, "  \"procs\": %d,\n", opts.procs);
  std::fprintf(f, "  \"landmarks\": %zu,\n", opts.landmarks);
  std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", opts.seed);
  std::fprintf(f, "  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
  std::fprintf(f,
               "  \"exact\": {\"wall_seconds\": %.6f, \"accuracy\": %.6f, "
               "\"iterations\": %lld, \"support_vectors\": %zu},\n",
               exact.wallSeconds, exact.accuracy, exact.iterations,
               exact.supportVectors);
  std::fprintf(f,
               "  \"nystrom\": {\"wall_seconds\": %.6f, \"accuracy\": %.6f, "
               "\"iterations\": %lld, \"support_vectors\": %zu},\n",
               low.wallSeconds, low.accuracy, low.iterations,
               low.supportVectors);
  std::fprintf(f, "  \"speedup\": %.4f,\n", speedup);
  std::fprintf(f, "  \"accuracy_delta\": %.6f\n", accDelta);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", opts.out.c_str());

  if (opts.check) {
    bool ok = true;
    if (speedup < opts.minSpeedup) {
      std::fprintf(stderr, "CHECK FAILED: speedup %.2fx < required %.2fx\n",
                   speedup, opts.minSpeedup);
      ok = false;
    }
    if (accDelta > opts.maxAccDelta) {
      std::fprintf(stderr,
                   "CHECK FAILED: accuracy delta %.4f > allowed %.4f\n",
                   accDelta, opts.maxAccDelta);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("CHECK PASSED: speedup >= %.2fx, accuracy delta <= %.4f\n",
                opts.minSpeedup, opts.maxAccDelta);
  }
  return 0;
}
