// Reproduces Table X: communication volume of each approach — the
// closed-form model prediction next to the byte-exact volume measured by
// the runtime's traffic matrix on a real run (the paper's ijcnn-on-8-nodes
// experiment). CA-SVM's row must be exactly zero in both columns. The two
// middle-ground methods (dis-smo-shrink, pbm) postdate the paper, so their
// "paper measured" column is a dash; the claims they add are checkable
// instead: both cut Dis-SMO's traffic while matching the exact serial
// solver's dual objective. Run with --check to turn those claims (and the
// CA-SVM zero) into hard assertions.

#include <cmath>

#include "bench_common.hpp"
#include "casvm/perf/comm_model.hpp"
#include "casvm/solver/smo.hpp"

using namespace casvm;

namespace {

// Dual objective sum(alpha) - 1/2 sum_ij alpha_i alpha_j y_i y_j K(i,j)
// recomputed from a finished model's support-vector expansion (alphaY
// carries alpha_i y_i, so |alphaY| is alpha and the products need no y).
double dualObjective(const solver::Model& model) {
  const data::Dataset& svs = model.supportVectors();
  const std::vector<double>& ay = model.alphaY();
  const kernel::Kernel kern(model.kernelParams());
  double linear = 0.0;
  double quad = 0.0;
  for (std::size_t i = 0; i < ay.size(); ++i) {
    linear += std::abs(ay[i]);
    quad += ay[i] * ay[i] * kern.eval(svs, i, i);
    for (std::size_t j = i + 1; j < ay.size(); ++j) {
      quad += 2.0 * ay[i] * ay[j] * kern.eval(svs, i, j);
    }
  }
  return linear - 0.5 * quad;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::requirePowerOfTwoProcs(opts);
  bench::heading("Table X: modeled vs measured communication volume",
                 "paper Table X (ijcnn dataset, 8 nodes)");

  const data::NamedDataset nd = bench::loadDataset("ijcnn", opts);

  struct Entry {
    core::Method method;
    const char* paperMeasured;
  };
  const Entry entries[] = {
      {core::Method::DisSmo, "34MB"}, {core::Method::DisSmoShrink, "-"},
      {core::Method::Pbm, "-"},       {core::Method::Cascade, "8.4MB"},
      {core::Method::DcSvm, "29MB"},  {core::Method::DcFilter, "18MB"},
      {core::Method::CpSvm, "17MB"},  {core::Method::RaCa, "0MB"},
  };

  // The exact serial solution the global methods must all converge to.
  const core::TrainConfig refCfg =
      bench::makeConfig(nd, core::Method::DisSmo, opts);
  solver::SmoSolver exact(refCfg.solver);
  const double exactObjective = exact.solve(nd.train).objective;

  TablePrinter table({"method", "formula (words)", "model prediction",
                      "measured here", "paper measured"});
  double disSmoBytes = 0.0, shrinkBytes = 0.0, pbmBytes = 0.0;
  double raBytes = -1.0;
  long long shrinkEngaged = -1, bcastsSkipped = 0;
  double shrinkObjective = 0.0, pbmObjective = 0.0;
  for (const Entry& entry : entries) {
    core::TrainConfig cfg = bench::makeConfig(nd, entry.method, opts);
    if (entry.method == core::Method::DisSmoShrink) {
      // Default shrink cadence (1000) is tuned for full-size runs; at
      // stand-in scale lower it so shrinking actually engages mid-run.
      cfg.solver.shrinkInterval = 128;
    }
    const core::TrainResult res = core::train(nd.train, cfg);

    perf::CommModelParams q;
    q.m = static_cast<long long>(nd.train.rows());
    q.n = static_cast<long long>(nd.train.cols());
    q.s = static_cast<long long>(res.model.totalSupportVectors());
    q.I = res.totalIterations;
    q.k = static_cast<long long>(res.kmeansLoops);
    q.p = opts.procs;
    if (entry.method == core::Method::Pbm) {
      q.r = cfg.pbmRounds;
      q.I = res.pairIterations;
    }

    const double measured = static_cast<double>(res.totalTrafficBytes());
    table.addRow({methodName(entry.method), perf::commFormula(entry.method),
                  TablePrinter::fmtBytes(
                      perf::predictedCommBytes(entry.method, q)),
                  TablePrinter::fmtBytes(measured), entry.paperMeasured});
    switch (entry.method) {
      case core::Method::DisSmo: disSmoBytes = measured; break;
      case core::Method::DisSmoShrink:
        shrinkBytes = measured;
        shrinkEngaged = res.shrinkEngagedIteration;
        bcastsSkipped = res.electedRowBcastsSkipped;
        shrinkObjective = dualObjective(res.model.model(0));
        break;
      case core::Method::Pbm:
        pbmBytes = measured;
        pbmObjective = dualObjective(res.model.model(0));
        std::printf("pbm: %lld block iters, %lld pair iters\n",
                    res.totalIterations - res.pairIterations,
                    res.pairIterations);
        break;
      case core::Method::RaCa: raBytes = measured; break;
      default: break;
    }
  }
  table.print();
  bench::note(
      "absolute volumes differ from the paper (smaller stand-in dataset, "
      "different collective implementations); the shape to check is the "
      "ordering Dis-SMO > DC-SVM > DC-Filter ~ CP-SVM > Cascade, the exact "
      "0 for CA-SVM, and pbm / dis-smo-shrink landing under Dis-SMO at the "
      "exact solver's objective.");

  const double tol = 1e-3 * std::abs(exactObjective);
  std::printf(
      "\nexact serial objective %.6f | dis-smo-shrink %.6f (engaged at it "
      "%lld, %lld row bcasts absorbed) | pbm %.6f\n",
      exactObjective, shrinkObjective, shrinkEngaged, bcastsSkipped,
      pbmObjective);
  std::printf("traffic: dis-smo %.0fB, dis-smo-shrink %.0fB, pbm %.0fB\n",
              disSmoBytes, shrinkBytes, pbmBytes);

  if (!opts.check) return 0;
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ++failures;
    }
  };
  expect(raBytes == 0.0, "ca-svm (ra-ca) must measure exactly 0 bytes");
  expect(pbmBytes < disSmoBytes,
         "pbm must move fewer bytes than dis-smo (allreduce totals)");
  expect(shrinkBytes < disSmoBytes,
         "dis-smo-shrink must move fewer bytes than dis-smo");
  expect(shrinkEngaged >= 0, "shrinking never engaged at bench scale");
  expect(bcastsSkipped > 0,
         "elected-row cache absorbed no broadcasts after shrink engaged");
  expect(std::abs(pbmObjective - exactObjective) <= tol,
         "pbm objective not within 1e-3 relative of the exact solver");
  expect(std::abs(shrinkObjective - exactObjective) <= tol,
         "dis-smo-shrink objective not within 1e-3 relative of the exact "
         "solver");
  if (failures == 0) std::printf("check: all %d assertions passed\n", 7);
  return failures == 0 ? 0 : 1;
}
