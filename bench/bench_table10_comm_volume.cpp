// Reproduces Table X: communication volume of all six approaches — the
// closed-form model prediction next to the byte-exact volume measured by
// the runtime's traffic matrix on a real run (the paper's ijcnn-on-8-nodes
// experiment). CA-SVM's row must be exactly zero in both columns.

#include "bench_common.hpp"
#include "casvm/perf/comm_model.hpp"

using namespace casvm;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::requirePowerOfTwoProcs(opts);
  bench::heading("Table X: modeled vs measured communication volume",
                 "paper Table X (ijcnn dataset, 8 nodes)");

  const data::NamedDataset nd = bench::loadDataset("ijcnn", opts);

  const core::Method methods[] = {core::Method::DisSmo, core::Method::Cascade,
                                  core::Method::DcSvm, core::Method::DcFilter,
                                  core::Method::CpSvm, core::Method::RaCa};
  const char* paperMeasured[] = {"34MB", "8.4MB", "29MB",
                                 "18MB", "17MB",  "0MB"};

  TablePrinter table({"method", "formula (words)", "model prediction",
                      "measured here", "paper measured"});
  int row = 0;
  for (core::Method method : methods) {
    const core::TrainConfig cfg = bench::makeConfig(nd, method, opts);
    const core::TrainResult res = core::train(nd.train, cfg);

    perf::CommModelParams q;
    q.m = static_cast<long long>(nd.train.rows());
    q.n = static_cast<long long>(nd.train.cols());
    q.s = static_cast<long long>(res.model.totalSupportVectors());
    q.I = res.totalIterations;
    q.k = static_cast<long long>(res.kmeansLoops);
    q.p = opts.procs;

    table.addRow({methodName(method), perf::commFormula(method),
                  TablePrinter::fmtBytes(perf::predictedCommBytes(method, q)),
                  TablePrinter::fmtBytes(
                      static_cast<double>(res.totalTrafficBytes())),
                  paperMeasured[row]});
    ++row;
  }
  table.print();
  bench::note(
      "absolute volumes differ from the paper (smaller stand-in dataset, "
      "different collective implementations); the shape to check is the "
      "ordering Dis-SMO > DC-SVM > DC-Filter ~ CP-SVM > Cascade and the "
      "exact 0 for CA-SVM.");
  return 0;
}
