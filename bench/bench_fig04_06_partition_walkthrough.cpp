// Reproduces Figs. 4 and 6: step-by-step walkthroughs of the two balanced
// partitioning algorithms on a tiny example, rendered as the paper's
// distance-matrix view (center x sample) with the final assignment marked.
//   Fig. 4: First-Come-First-Served — each sample grabs its nearest
//           *under-loaded* center in arrival order.
//   Fig. 6: balanced K-means — K-means first, then the farthest samples of
//           over-loaded centers migrate to the nearest under-loaded ones.

#include <cmath>

#include "bench_common.hpp"
#include "casvm/cluster/balanced_kmeans.hpp"
#include "casvm/cluster/fcfs.hpp"

using namespace casvm;

namespace {

// 8 samples in 2-D around 3 loose groups; 3 centers like the paper's toys.
data::Dataset toyPoints() {
  return data::Dataset::fromDense(
      2,
      {0.0f, 0.0f, 0.5f, 0.4f, 0.2f, 0.9f,    // group near origin
       5.0f, 5.0f, 5.5f, 4.6f, 4.8f, 5.3f,    // group near (5,5)
       9.5f, 0.5f, 9.0f, 1.0f},               // group near (9.5, 0.5)
      {1, 1, -1, 1, -1, -1, 1, -1});
}

void printDistanceMatrix(const data::Dataset& ds,
                         const cluster::Partition& p) {
  std::vector<std::string> headers{"center\\sample"};
  for (std::size_t s = 0; s < ds.rows(); ++s) {
    headers.push_back("S" + std::to_string(s));
  }
  TablePrinter table(std::move(headers));
  for (int c = 0; c < p.parts; ++c) {
    std::vector<std::string> row{"C" + std::to_string(c)};
    const auto& center = p.centers[static_cast<std::size_t>(c)];
    double self = 0.0;
    for (float v : center) self += double(v) * double(v);
    for (std::size_t s = 0; s < ds.rows(); ++s) {
      const double d = std::sqrt(ds.squaredDistanceTo(s, center, self));
      std::string cell = TablePrinter::fmt(d, 1);
      if (p.assign[s] == c) cell += "*";  // the paper's color marking
      row.push_back(std::move(cell));
    }
    table.addRow(std::move(row));
  }
  table.print();
  std::printf("(* = sample assigned to this center)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::heading("Figs. 4 & 6: balanced-partitioning walkthroughs",
                 "paper Fig. 4 (FCFS) and Fig. 6 (balanced K-means)");

  const data::Dataset ds = toyPoints();
  constexpr int kParts = 4;  // 8 samples -> 2 per center when balanced

  std::printf("\n[Fig. 4: First-Come-First-Served, %zu samples, %d centers]\n",
              ds.rows(), kParts);
  cluster::FcfsOptions fc;
  fc.parts = kParts;
  fc.seed = opts.seed;
  fc.recomputeCenters = false;  // keep the sampled centers, like the figure
  const cluster::Partition fcfs = cluster::fcfsPartition(ds, fc);
  printDistanceMatrix(ds, fcfs);
  {
    const auto sizes = fcfs.sizes();
    std::printf("final sizes:");
    for (std::size_t s : sizes) std::printf(" %zu", s);
    std::printf(" (balanced size = %zu)\n", ds.rows() / kParts);
  }

  std::printf("\n[Fig. 6: balanced K-means, %zu samples, %d centers]\n",
              ds.rows(), kParts);
  cluster::BalancedKMeansOptions bkm;
  bkm.parts = kParts;
  bkm.seed = opts.seed;
  const cluster::BalancedKMeansResult res = cluster::balancedKmeans(ds, bkm);
  printDistanceMatrix(ds, res.partition);
  {
    const auto sizes = res.partition.sizes();
    std::printf("K-means loops: %zu, migrations: %zu, final sizes:",
                res.kmeansLoops, res.moves);
    for (std::size_t s : sizes) std::printf(" %zu", s);
    std::printf("\n");
  }
  bench::note(
      "paper Fig. 6 ends with every center holding exactly 2 samples; the "
      "migration count shows how many samples the rebalancing moved.");
  return 0;
}
