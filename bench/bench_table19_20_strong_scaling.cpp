// Reproduces Tables XIX and XX: strong scaling (time and efficiency) of
// the six approaches on the epsilon workload, 96 -> 1536 processors.
//
// 1536 ranks cannot run physically in this container, so — per DESIGN.md's
// substitution policy — the large-P times come from the calibrated
// analytic scaling model (perf::modeledTrainTime), whose per-iteration
// cost, iteration growth and SV fraction are fitted from real solves of
// this library's SMO run here first. The shapes to reproduce:
//   - CA-SVM scales superlinearly (paper: 1068.7% efficiency at 1536);
//   - Cascade is superlinear early, then falls off;
//   - DC-SVM and DC-Filter degrade badly;
//   - CA-SVM is fastest everywhere at scale.

#include "bench_common.hpp"
#include "casvm/perf/scaling_sim.hpp"

using namespace casvm;

namespace {

struct PaperScaling {
  core::Method method;
  const char* name;
  double timeSeconds[5];  // P = 96, 192, 384, 768, 1536
};

const PaperScaling kPaper[] = {
    {core::Method::DisSmo, "dis-smo", {2067, 1135, 777, 326, 183}},
    {core::Method::Cascade, "cascade", {1207, 376, 154, 76.1, 165}},
    {core::Method::DcSvm, "dc-svm", {11841, 8515, 4461, 3909, 3547}},
    {core::Method::DcFilter, "dc-filter", {2473, 1517, 1100, 1519, 1879}},
    {core::Method::CpSvm, "cp-svm", {2248, 1332, 877, 546, 202}},
    {core::Method::RaCa, "ca-svm", {1095, 313, 86, 23, 6}},
};

constexpr int kProcs[] = {96, 192, 384, 768, 1536};
constexpr long long kSamples = 128000;  // paper: 128k samples, 2k nnz

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::heading("Tables XIX & XX: strong scaling, epsilon 128k samples",
                 "paper Tables XIX and XX (96..1536 processors)");

  // Calibrate the model from real solves on the epsilon stand-in.
  const data::NamedDataset nd = bench::loadDataset("epsilon", opts);
  solver::SolverOptions sopts;
  sopts.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  sopts.C = nd.suggestedC;
  const perf::ScalingCalibration cal = perf::calibrate(
      nd.train, sopts,
      {nd.train.rows() / 8, nd.train.rows() / 4, nd.train.rows() / 2},
      opts.seed);
  std::printf(
      "calibration: %.3f iters/sample, %.2e s/(iter*row), SV fraction "
      "%.2f, K-means imbalance %.2f\n",
      cal.itersPerSample, cal.secPerIterRow, cal.svFraction, cal.cpImbalance);

  std::printf("\n[Table XIX: strong scaling time (modeled seconds)]\n");
  TablePrinter timeTable({"method", "P=96", "P=192", "P=384", "P=768",
                          "P=1536", "paper P=96", "paper P=1536"});
  std::printf("[efficiencies follow in the second table]\n");
  TablePrinter effTable({"method", "P=96", "P=192", "P=384", "P=768",
                         "P=1536", "paper P=1536"});
  for (const PaperScaling& row : kPaper) {
    std::vector<std::string> timeCells{row.name};
    std::vector<std::string> effCells{row.name};
    double t96 = 0.0;
    for (int i = 0; i < 5; ++i) {
      const double t =
          perf::modeledTrainTime(row.method, cal, kSamples, kProcs[i]).total();
      if (i == 0) t96 = t;
      timeCells.push_back(TablePrinter::fmt(t, t < 10 ? 2 : 1) + "s");
      // Strong-scaling efficiency: T(96)*96 / (T(P)*P).
      effCells.push_back(TablePrinter::fmtPercent(
          t96 * kProcs[0] / (t * kProcs[i])));
    }
    timeCells.push_back(TablePrinter::fmt(row.timeSeconds[0], 0) + "s");
    timeCells.push_back(TablePrinter::fmt(row.timeSeconds[4], 0) + "s");
    timeTable.addRow(std::move(timeCells));
    effCells.push_back(TablePrinter::fmtPercent(
        row.timeSeconds[0] * kProcs[0] / (row.timeSeconds[4] * kProcs[4])));
    effTable.addRow(std::move(effCells));
  }
  timeTable.print();
  std::printf("\n[Table XX: strong scaling efficiency]\n");
  effTable.print();
  bench::note(
      "modeled times are calibrated to this machine's single-core solver, "
      "so absolute seconds differ from Hopper's; compare per-method shape "
      "and the efficiency columns (paper CA-SVM: 1068.7% at P=1536).");
  return 0;
}
