// Serving throughput benchmark — scalar predict vs. the compiled batch
// path vs. the full engine (see DESIGN.md §7).
//
// For each stand-in (epsilon: dense wide, ijcnn: dense narrow, webspam:
// sparse) this trains a model, then scores the test set three ways:
//
//   scalar    Model::decisionFor row by row (the pre-serve baseline)
//   compiled  CompiledDistributedModel::decisionAll (tiled batch, 1 thread)
//   engine    ServeEngine end to end with 1/2/4 workers (micro-batching,
//             queueing and reply latency included)
//
// The compiled path must be bitwise-identical to scalar — the bench aborts
// on the first mismatching decision, so a speedup here can never hide a
// numerics change. Emits BENCH_SERVE_SPEEDUP.json.
//
// Options:
//   --smoke      tiny sizes for CI
//   --seed <s>   dataset RNG seed (default 42)
//   --out <f>    output path (default BENCH_SERVE_SPEEDUP.json)

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "casvm/core/distributed_model.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/serve/engine.hpp"
#include "casvm/solver/smo.hpp"

namespace {

using namespace casvm;

struct Options {
  bool smoke = false;
  std::uint64_t seed = 42;
  std::string out = "BENCH_SERVE_SPEEDUP.json";
};

Options parseArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opts.out = next("--out");
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      (void)next("--scale");  // smoke-harness uniformity; sizes are fixed
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("options: --smoke --seed <s> --out <f>\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return opts;
}

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Record {
  std::string dataset;
  std::size_t testRows = 0;
  std::size_t svs = 0;
  double scalarQps = 0.0;
  double compiledQps = 0.0;
  std::vector<std::pair<int, double>> engineQps;  // (workers, qps)

  double speedup() const {
    return scalarQps > 0.0 ? compiledQps / scalarQps : 0.0;
  }
};

/// Rows/second for the end-to-end engine at a given worker count: every
/// test row is submitted open-loop (capacity = all of them, so nothing
/// sheds) and the clock stops when the last reply lands.
double engineThroughput(const serve::CompiledDistributedModel& compiled,
                        const std::vector<std::vector<float>>& queries,
                        int workers, std::size_t reps) {
  serve::ServeConfig config;
  config.workers = workers;
  config.batchSize = 64;
  config.maxWaitUs = 100;
  config.queueCapacity = queries.size() * reps;
  serve::ServeEngine engine(compiled, config);

  std::vector<std::future<serve::ServeReply>> inflight;
  inflight.reserve(queries.size() * reps);
  const double t0 = now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const auto& q : queries) inflight.push_back(engine.submit(q));
  }
  std::size_t ok = 0;
  for (auto& f : inflight) ok += (f.get().code == serve::ServeCode::Ok);
  const double seconds = now() - t0;
  engine.drain();
  if (ok != inflight.size()) {
    std::fprintf(stderr, "engine dropped %zu of %zu requests\n",
                 inflight.size() - ok, inflight.size());
    std::exit(1);
  }
  return seconds > 0.0 ? double(ok) / seconds : 0.0;
}

void writeJson(const Options& opts, const std::vector<Record>& records) {
  std::FILE* f = std::fopen(opts.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", opts.out.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_speedup\",\n");
  std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", opts.seed);
  std::fprintf(f, "  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f, "    {\"dataset\": \"%s\", \"test_rows\": %zu, ",
                 r.dataset.c_str(), r.testRows);
    std::fprintf(f, "\"support_vectors\": %zu, ", r.svs);
    std::fprintf(f, "\"scalar_qps\": %.1f, \"compiled_qps\": %.1f, ",
                 r.scalarQps, r.compiledQps);
    std::fprintf(f, "\"compiled_speedup\": %.2f, \"engine\": [", r.speedup());
    for (std::size_t e = 0; e < r.engineQps.size(); ++e) {
      std::fprintf(f, "{\"workers\": %d, \"qps\": %.1f}%s",
                   r.engineQps[e].first, r.engineQps[e].second,
                   e + 1 < r.engineQps.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu configs)\n", opts.out.c_str(), records.size());
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parseArgs(argc, argv);

  // Base stand-in sizes at scale 1.0 (see data/registry.cpp). webspam is
  // the sparse-storage representative; the paper's serving-relevant sets
  // (epsilon, ijcnn) are dense.
  struct Spec {
    const char* name;
    std::size_t baseRows;
    std::size_t trainRows;
    std::size_t smokeRows;
  };
  const std::vector<Spec> specs = {{"epsilon", 4000, 2000, 256},
                                   {"ijcnn", 5000, 2000, 256},
                                   {"webspam", 4000, 1500, 256}};
  const std::size_t reps = opts.smoke ? 2 : 4;

  std::printf("%-8s %6s %5s %12s %12s %8s %s\n", "dataset", "rows", "svs",
              "scalar q/s", "batch q/s", "speedup", "engine q/s (w1/w2/w4)");
  std::vector<Record> records;
  for (const Spec& spec : specs) {
    const std::size_t rows = opts.smoke ? spec.smokeRows : spec.trainRows;
    const double scale =
        static_cast<double>(rows) / static_cast<double>(spec.baseRows);
    const data::NamedDataset nd = data::standin(spec.name, scale, opts.seed);

    solver::SolverOptions so;
    so.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
    so.C = nd.suggestedC;
    const solver::Model model = solver::SmoSolver(so).solve(nd.train).model;
    const serve::CompiledDistributedModel compiled =
        serve::CompiledDistributedModel::compile(
            core::DistributedModel::single(model));

    Record rec;
    rec.dataset = spec.name;
    rec.testRows = nd.test.rows();
    rec.svs = model.numSupportVectors();

    // Scalar baseline: the per-row kernel loop prediction used everywhere
    // before the serve subsystem existed.
    std::vector<double> scalarDecisions(nd.test.rows());
    {
      const double t0 = now();
      for (std::size_t r = 0; r < reps; ++r) {
        for (std::size_t i = 0; i < nd.test.rows(); ++i) {
          scalarDecisions[i] = model.decisionFor(nd.test, i);
        }
      }
      rec.scalarQps = double(nd.test.rows() * reps) / (now() - t0);
    }

    // Compiled batch path, single thread, identical math.
    std::vector<double> batchDecisions(nd.test.rows());
    {
      serve::BatchScratch scratch;
      const double t0 = now();
      for (std::size_t r = 0; r < reps; ++r) {
        compiled.decisionAll(nd.test, batchDecisions, scratch);
      }
      rec.compiledQps = double(nd.test.rows() * reps) / (now() - t0);
    }
    for (std::size_t i = 0; i < nd.test.rows(); ++i) {
      if (std::memcmp(&scalarDecisions[i], &batchDecisions[i],
                      sizeof(double)) != 0) {
        std::fprintf(stderr,
                     "%s: batch decision %zu not bitwise-identical to "
                     "scalar (%.17g vs %.17g)\n",
                     spec.name, i, batchDecisions[i], scalarDecisions[i]);
        return 1;
      }
    }

    std::vector<std::vector<float>> queries(nd.test.rows());
    for (std::size_t i = 0; i < nd.test.rows(); ++i) {
      queries[i].resize(nd.test.cols());
      nd.test.copyRowDense(i, queries[i]);
    }
    for (int workers : {1, 2, 4}) {
      rec.engineQps.emplace_back(
          workers, engineThroughput(compiled, queries, workers, reps));
    }

    std::printf("%-8s %6zu %5zu %12.0f %12.0f %7.2fx %.0f / %.0f / %.0f\n",
                rec.dataset.c_str(), rec.testRows, rec.svs, rec.scalarQps,
                rec.compiledQps, rec.speedup(), rec.engineQps[0].second,
                rec.engineQps[1].second, rec.engineQps[2].second);
    std::fflush(stdout);
    records.push_back(std::move(rec));
  }

  writeJson(opts, records);
  return 0;
}
