// Serving throughput benchmark — scalar predict vs. the compiled batch
// path vs. the full engine (see DESIGN.md §7), plus the serving-tier
// robustness scenarios (§10).
//
// For each stand-in (epsilon: dense wide, ijcnn: dense narrow, webspam:
// sparse) this trains a model, then scores the test set three ways:
//
//   scalar    Model::decisionFor row by row (the pre-serve baseline)
//   compiled  CompiledDistributedModel::decisionAll (tiled batch, 1 thread)
//   engine    ServeEngine end to end with 1/2/4 workers (micro-batching,
//             queueing and reply latency included)
//
// The compiled path must be bitwise-identical to scalar — the bench aborts
// on the first mismatching decision, so a speedup here can never hide a
// numerics change.
//
// Two robustness scenarios then gate the hot-swap and overload machinery:
//
//   swap      20 consecutive publish() calls under sustained load. Every
//             future must resolve, and every Ok reply is bitwise-compared
//             to the scalar decisionFor of the exact generation that
//             scored it (each generation carries a distinct bias, so a
//             stale pack cannot masquerade as a fresh one).
//   overload  open-loop burst into a tiny queue with stalled scoring:
//             brownout must engage and the circuit breaker must trip to
//             Degraded; a gentle closed-loop phase must then recover it
//             (hysteresis exercised both ways). Asserted from ServeStats.
//
// Emits BENCH_SERVE_SPEEDUP.json.
//
// Options:
//   --smoke      tiny sizes for CI
//   --seed <s>   dataset RNG seed (default 42)
//   --out <f>    output path (default BENCH_SERVE_SPEEDUP.json)

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "casvm/core/distributed_model.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/serve/engine.hpp"
#include "casvm/solver/smo.hpp"

namespace {

using namespace casvm;

struct Options {
  bool smoke = false;
  std::uint64_t seed = 42;
  std::string out = "BENCH_SERVE_SPEEDUP.json";
};

Options parseArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opts.out = next("--out");
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      (void)next("--scale");  // smoke-harness uniformity; sizes are fixed
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("options: --smoke --seed <s> --out <f>\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return opts;
}

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Record {
  std::string dataset;
  std::size_t testRows = 0;
  std::size_t svs = 0;
  double scalarQps = 0.0;
  double compiledQps = 0.0;
  std::vector<std::pair<int, double>> engineQps;  // (workers, qps)

  double speedup() const {
    return scalarQps > 0.0 ? compiledQps / scalarQps : 0.0;
  }
};

/// Rows/second for the end-to-end engine at a given worker count: every
/// test row is submitted open-loop (capacity = all of them, so nothing
/// sheds) and the clock stops when the last reply lands.
double engineThroughput(const serve::CompiledDistributedModel& compiled,
                        const std::vector<std::vector<float>>& queries,
                        int workers, std::size_t reps) {
  serve::ServeConfig config;
  config.workers = workers;
  config.batchSize = 64;
  config.maxWaitUs = 100;
  config.queueCapacity = queries.size() * reps;
  serve::ServeEngine engine(compiled, config);

  std::vector<std::future<serve::ServeReply>> inflight;
  inflight.reserve(queries.size() * reps);
  const double t0 = now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const auto& q : queries) inflight.push_back(engine.submit(q));
  }
  std::size_t ok = 0;
  for (auto& f : inflight) ok += (f.get().code == serve::ServeCode::Ok);
  const double seconds = now() - t0;
  engine.drain();
  if (ok != inflight.size()) {
    std::fprintf(stderr, "engine dropped %zu of %zu requests\n",
                 inflight.size() - ok, inflight.size());
    std::exit(1);
  }
  return seconds > 0.0 ? double(ok) / seconds : 0.0;
}

std::vector<std::vector<float>> buildQueries(const data::Dataset& ds) {
  std::vector<std::vector<float>> queries(ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    queries[i].resize(ds.cols());
    ds.copyRowDense(i, queries[i]);
  }
  return queries;
}

struct SwapResult {
  std::size_t swaps = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;  // shed/timeout/stopped (all explicit codes)
  std::uint64_t generationsSeen = 0;
  std::uint64_t mismatches = 0;
  bool passed = false;
};

/// Hot-swap property gate: 20 consecutive publishes while a background
/// thread keeps the engine under load. Each generation g gets a distinct
/// bias (base + g/1000), so every Ok reply can be bitwise-verified against
/// the scalar decisionFor of exactly the generation that reported scoring
/// it — a request scored by a pack retired before its batch began would
/// surface as a mismatch.
SwapResult runSwapScenario(const data::NamedDataset& nd,
                           const solver::Model& base) {
  constexpr std::size_t kSwaps = 20;
  std::vector<solver::Model> gens;
  gens.reserve(kSwaps + 1);
  gens.push_back(base);
  for (std::size_t g = 1; g <= kSwaps; ++g) {
    gens.emplace_back(base.kernelParams(), base.supportVectors(),
                      base.alphaY(), base.bias() + 1e-3 * double(g));
  }
  const std::size_t rows = nd.test.rows();
  std::vector<std::vector<double>> ref(gens.size(), std::vector<double>(rows));
  for (std::size_t g = 0; g < gens.size(); ++g) {
    for (std::size_t i = 0; i < rows; ++i) {
      ref[g][i] = gens[g].decisionFor(nd.test, i);
    }
  }
  const auto queries = buildQueries(nd.test);

  serve::ServeConfig config;
  config.workers = 2;
  config.batchSize = 16;
  config.maxWaitUs = 100;
  config.queueCapacity = 4096;
  serve::ServeEngine engine(serve::CompiledDistributedModel::compile(
                                core::DistributedModel::single(gens[0])),
                            config);

  std::atomic<bool> stop{false};
  std::mutex inflightMutex;
  std::vector<std::pair<std::size_t, std::future<serve::ServeReply>>> inflight;
  std::thread loadThread([&] {
    std::size_t i = 0;
    while (!stop.load()) {
      const std::size_t q = i++ % queries.size();
      auto fut = engine.submit(queries[q]);
      {
        std::lock_guard<std::mutex> lock(inflightMutex);
        inflight.emplace_back(q, std::move(fut));
      }
      if (i % 64 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });

  SwapResult result;
  result.swaps = kSwaps;
  for (std::size_t g = 1; g <= kSwaps; ++g) {
    const std::uint64_t gen =
        engine.publish(serve::CompiledDistributedModel::compile(
            core::DistributedModel::single(gens[g])));
    // Probe until the new generation is observably serving before the
    // next publish — "consecutive" swaps, not one racing batch of them.
    while (engine.score(queries[0]).modelGeneration < gen) {
    }
  }
  stop.store(true);
  loadThread.join();

  std::vector<bool> seen(kSwaps + 2, false);
  for (auto& [q, fut] : inflight) {
    const serve::ServeReply reply = fut.get();
    if (reply.code != serve::ServeCode::Ok) {
      ++result.rejected;
      continue;
    }
    ++result.ok;
    const std::uint64_t g = reply.modelGeneration;
    if (g < 1 || g > kSwaps + 1) {
      ++result.mismatches;
      continue;
    }
    seen[g] = true;
    if (std::memcmp(&reply.decision, &ref[g - 1][q], sizeof(double)) != 0) {
      if (result.mismatches == 0) {
        std::fprintf(stderr,
                     "swap: decision for query %zu under generation %" PRIu64
                     " not bitwise-identical to that generation's scalar "
                     "decisionFor (%.17g vs %.17g)\n",
                     q, g, reply.decision, ref[g - 1][q]);
      }
      ++result.mismatches;
    }
  }
  engine.drain();
  const serve::ServeStats stats = engine.stats();
  for (std::size_t g = 1; g < seen.size(); ++g) {
    result.generationsSeen += seen[g] ? 1 : 0;
  }
  result.passed = result.mismatches == 0 && result.ok > 0 &&
                  stats.modelSwaps == kSwaps &&
                  stats.modelGeneration == kSwaps + 1 &&
                  stats.health == "drained";
  return result;
}

struct OverloadResult {
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t brownoutEngaged = 0;
  std::uint64_t brownoutBatches = 0;
  std::uint64_t breakerTrips = 0;
  std::uint64_t breakerRecoveries = 0;
  std::size_t recoverScores = 0;
  bool passed = false;
};

/// Overload-protection gate: a burst into a tiny queue with stalled
/// scoring must engage brownout and trip the breaker to Degraded; a
/// gentle closed-loop phase must then recover it (hysteresis both ways).
OverloadResult runOverloadScenario(const solver::Model& base,
                                   const std::vector<std::vector<float>>& queries) {
  serve::ServeConfig config;
  config.workers = 1;
  config.batchSize = 8;
  config.maxWaitUs = 200;
  config.queueCapacity = 64;
  config.injectScoreDelayUs = 2000;
  config.breaker.windowRequests = 64;
  config.breaker.maxShedRate = 0.3;
  config.breaker.tripWindows = 2;
  config.breaker.recoverWindows = 2;
  serve::ServeEngine engine(serve::CompiledDistributedModel::compile(
                                core::DistributedModel::single(base)),
                            config);

  OverloadResult result;
  std::vector<std::future<serve::ServeReply>> inflight;
  inflight.reserve(2000);
  for (std::size_t i = 0; i < 2000; ++i) {
    inflight.push_back(engine.submit(queries[i % queries.size()]));
  }
  for (auto& f : inflight) {
    const serve::ServeCode code = f.get().code;
    result.ok += code == serve::ServeCode::Ok;
    result.shed += code == serve::ServeCode::Shed;
  }

  // Recovery phase: sequential synchronous scores are always admitted
  // (empty queue), so windows go healthy and the breaker must close.
  while (engine.health() != serve::Health::Ready &&
         result.recoverScores < 1000) {
    (void)engine.score(queries[result.recoverScores % queries.size()]);
    ++result.recoverScores;
  }
  const bool recovered = engine.health() == serve::Health::Ready;
  engine.drain();
  const serve::ServeStats stats = engine.stats();
  result.brownoutEngaged = stats.brownoutEngaged;
  result.brownoutBatches = stats.brownoutBatches;
  result.breakerTrips = stats.breakerTrips;
  result.breakerRecoveries = stats.breakerRecoveries;
  result.passed = recovered && stats.brownoutEngaged >= 1 &&
                  stats.breakerTrips >= 1 && stats.breakerRecoveries >= 1 &&
                  stats.health == "drained";
  return result;
}

void writeJson(const Options& opts, const std::vector<Record>& records,
               const SwapResult& swap, const OverloadResult& overload) {
  std::FILE* f = std::fopen(opts.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", opts.out.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_speedup\",\n");
  std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", opts.seed);
  std::fprintf(f, "  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f, "    {\"dataset\": \"%s\", \"test_rows\": %zu, ",
                 r.dataset.c_str(), r.testRows);
    std::fprintf(f, "\"support_vectors\": %zu, ", r.svs);
    std::fprintf(f, "\"scalar_qps\": %.1f, \"compiled_qps\": %.1f, ",
                 r.scalarQps, r.compiledQps);
    std::fprintf(f, "\"compiled_speedup\": %.2f, \"engine\": [", r.speedup());
    for (std::size_t e = 0; e < r.engineQps.size(); ++e) {
      std::fprintf(f, "{\"workers\": %d, \"qps\": %.1f}%s",
                   r.engineQps[e].first, r.engineQps[e].second,
                   e + 1 < r.engineQps.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"scenarios\": {\n");
  std::fprintf(f,
               "    \"swap_under_load\": {\"swaps\": %zu, \"ok\": %" PRIu64
               ", \"rejected\": %" PRIu64 ", \"generations_seen\": %" PRIu64
               ", \"mismatches\": %" PRIu64 ", \"passed\": %s},\n",
               swap.swaps, swap.ok, swap.rejected, swap.generationsSeen,
               swap.mismatches, swap.passed ? "true" : "false");
  std::fprintf(f,
               "    \"overload\": {\"ok\": %" PRIu64 ", \"shed\": %" PRIu64
               ", \"brownout_engaged\": %" PRIu64
               ", \"brownout_batches\": %" PRIu64 ", \"breaker_trips\": %" PRIu64
               ", \"breaker_recoveries\": %" PRIu64
               ", \"recover_scores\": %zu, \"passed\": %s}\n",
               overload.ok, overload.shed, overload.brownoutEngaged,
               overload.brownoutBatches, overload.breakerTrips,
               overload.breakerRecoveries, overload.recoverScores,
               overload.passed ? "true" : "false");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu configs + 2 scenarios)\n", opts.out.c_str(),
              records.size());
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parseArgs(argc, argv);

  // Base stand-in sizes at scale 1.0 (see data/registry.cpp). webspam is
  // the sparse-storage representative; the paper's serving-relevant sets
  // (epsilon, ijcnn) are dense.
  struct Spec {
    const char* name;
    std::size_t baseRows;
    std::size_t trainRows;
    std::size_t smokeRows;
  };
  const std::vector<Spec> specs = {{"epsilon", 4000, 2000, 256},
                                   {"ijcnn", 5000, 2000, 256},
                                   {"webspam", 4000, 1500, 256}};
  const std::size_t reps = opts.smoke ? 2 : 4;

  std::printf("%-8s %6s %5s %12s %12s %8s %s\n", "dataset", "rows", "svs",
              "scalar q/s", "batch q/s", "speedup", "engine q/s (w1/w2/w4)");
  std::vector<Record> records;
  for (const Spec& spec : specs) {
    const std::size_t rows = opts.smoke ? spec.smokeRows : spec.trainRows;
    const double scale =
        static_cast<double>(rows) / static_cast<double>(spec.baseRows);
    const data::NamedDataset nd = data::standin(spec.name, scale, opts.seed);

    solver::SolverOptions so;
    so.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
    so.C = nd.suggestedC;
    const solver::Model model = solver::SmoSolver(so).solve(nd.train).model;
    const serve::CompiledDistributedModel compiled =
        serve::CompiledDistributedModel::compile(
            core::DistributedModel::single(model));

    Record rec;
    rec.dataset = spec.name;
    rec.testRows = nd.test.rows();
    rec.svs = model.numSupportVectors();

    // Scalar baseline: the per-row kernel loop prediction used everywhere
    // before the serve subsystem existed.
    std::vector<double> scalarDecisions(nd.test.rows());
    {
      const double t0 = now();
      for (std::size_t r = 0; r < reps; ++r) {
        for (std::size_t i = 0; i < nd.test.rows(); ++i) {
          scalarDecisions[i] = model.decisionFor(nd.test, i);
        }
      }
      rec.scalarQps = double(nd.test.rows() * reps) / (now() - t0);
    }

    // Compiled batch path, single thread, identical math.
    std::vector<double> batchDecisions(nd.test.rows());
    {
      serve::BatchScratch scratch;
      const double t0 = now();
      for (std::size_t r = 0; r < reps; ++r) {
        compiled.decisionAll(nd.test, batchDecisions, scratch);
      }
      rec.compiledQps = double(nd.test.rows() * reps) / (now() - t0);
    }
    for (std::size_t i = 0; i < nd.test.rows(); ++i) {
      if (std::memcmp(&scalarDecisions[i], &batchDecisions[i],
                      sizeof(double)) != 0) {
        std::fprintf(stderr,
                     "%s: batch decision %zu not bitwise-identical to "
                     "scalar (%.17g vs %.17g)\n",
                     spec.name, i, batchDecisions[i], scalarDecisions[i]);
        return 1;
      }
    }

    std::vector<std::vector<float>> queries(nd.test.rows());
    for (std::size_t i = 0; i < nd.test.rows(); ++i) {
      queries[i].resize(nd.test.cols());
      nd.test.copyRowDense(i, queries[i]);
    }
    for (int workers : {1, 2, 4}) {
      rec.engineQps.emplace_back(
          workers, engineThroughput(compiled, queries, workers, reps));
    }

    std::printf("%-8s %6zu %5zu %12.0f %12.0f %7.2fx %.0f / %.0f / %.0f\n",
                rec.dataset.c_str(), rec.testRows, rec.svs, rec.scalarQps,
                rec.compiledQps, rec.speedup(), rec.engineQps[0].second,
                rec.engineQps[1].second, rec.engineQps[2].second);
    std::fflush(stdout);
    records.push_back(std::move(rec));
  }

  // Robustness scenarios run on the toy stand-in: small enough to be fast
  // at smoke sizes, big enough to keep the engine busy across 20 swaps.
  const data::NamedDataset toy = data::standin("toy", 0.5, opts.seed);
  solver::SolverOptions so;
  so.kernel = kernel::KernelParams::gaussian(toy.suggestedGamma);
  so.C = toy.suggestedC;
  const solver::Model toyModel = solver::SmoSolver(so).solve(toy.train).model;

  const SwapResult swap = runSwapScenario(toy, toyModel);
  std::printf(
      "swap      %zu publishes  ok %" PRIu64 "  rejected %" PRIu64
      "  generations %" PRIu64 "  mismatches %" PRIu64 "  %s\n",
      swap.swaps, swap.ok, swap.rejected, swap.generationsSeen,
      swap.mismatches, swap.passed ? "PASS" : "FAIL");

  const OverloadResult overload =
      runOverloadScenario(toyModel, buildQueries(toy.test));
  std::printf(
      "overload  ok %" PRIu64 "  shed %" PRIu64 "  brownout %" PRIu64
      " (%" PRIu64 " batches)  trips %" PRIu64 "  recoveries %" PRIu64
      "  %s\n",
      overload.ok, overload.shed, overload.brownoutEngaged,
      overload.brownoutBatches, overload.breakerTrips,
      overload.breakerRecoveries, overload.passed ? "PASS" : "FAIL");

  writeJson(opts, records, swap, overload);
  if (!swap.passed || !overload.passed) {
    std::fprintf(stderr, "bench_serve: robustness scenario failed\n");
    return 1;
  }
  return 0;
}
