// Reproduces Tables VI and IX: per-rank iteration counts and training
// times under FCFS partitioning, without (Table VI) and with (Table IX)
// the ratio-balancing refinement. The paper's punchline: balanced data
// volume alone leaves a 20x spread between the fastest and slowest node
// (0.69s vs 13.8s); adding per-class quotas collapses it to ~1.05x.

#include <algorithm>

#include "bench_common.hpp"

using namespace casvm;

namespace {

void report(const char* title, const core::TrainResult& res, int P) {
  std::printf("\n[%s]\n", title);
  // Sort ranks by time like the paper's tables do.
  std::vector<int> order(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) order[static_cast<std::size_t>(r)] = r;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return res.trainSecondsPerRank[static_cast<std::size_t>(a)] <
           res.trainSecondsPerRank[static_cast<std::size_t>(b)];
  });

  TablePrinter table({"rank", "samples", "iters", "time (s)"});
  for (int r : order) {
    const auto ur = static_cast<std::size_t>(r);
    table.addRow({std::to_string(r),
                  TablePrinter::fmtCount(res.samplesPerRank[ur]),
                  TablePrinter::fmtCount(res.iterationsPerRank[ur]),
                  TablePrinter::fmt(res.trainSecondsPerRank[ur], 4)});
  }
  table.print();

  const auto [itLo, itHi] = std::minmax_element(
      res.iterationsPerRank.begin(), res.iterationsPerRank.end());
  const auto [tLo, tHi] = std::minmax_element(
      res.trainSecondsPerRank.begin(), res.trainSecondsPerRank.end());
  std::printf("iteration spread: %.1fx   time spread: %.1fx\n",
              double(*itHi) / std::max(1.0, double(*itLo)),
              *tHi / std::max(1e-9, *tLo));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::heading("Tables VI & IX: balanced data vs balanced load",
                 "paper Tables VI and IX (face dataset, 8 nodes)");

  const data::NamedDataset nd = bench::loadDataset("face", opts);

  core::TrainConfig plain = bench::makeConfig(nd, core::Method::FcfsCa, opts);
  plain.ratioBalance = false;
  const core::TrainResult without = core::train(nd.train, plain);
  report("Table VI: FCFS, data balanced only (ratio balance OFF)", without,
         opts.procs);

  core::TrainConfig ratio = bench::makeConfig(nd, core::Method::FcfsCa, opts);
  ratio.ratioBalance = true;
  const core::TrainResult with = core::train(nd.train, ratio);
  report("Table IX: FCFS + ratio balance (the paper's FCFS-CA)", with,
         opts.procs);

  std::printf("\naccuracy: without ratio balance %.1f%%, with %.1f%%\n",
              100.0 * without.model.accuracy(nd.test),
              100.0 * with.model.accuracy(nd.test));
  bench::note(
      "paper: spread drops from 20x (13.8s/0.69s, Table VI) to ~1.05x "
      "(6.50s/6.21s, Table IX).");
  return 0;
}
