// Ablation: sub-solver options shared by every method — working-set
// selection order (first-order maximal-violating pair, the paper's
// formulation, vs the second-order rule of Fan et al. [21] that the paper
// cites as related work) and shrinking. Reported per dataset: iterations,
// kernel rows computed (the real cost driver) and wall time.

#include "bench_common.hpp"
#include "casvm/solver/smo.hpp"

using namespace casvm;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parseArgs(argc, argv);
  bench::heading("Ablation: SMO working-set selection and shrinking",
                 "paper §II-B / [21] (design choice, no table)");

  TablePrinter table({"dataset", "variant", "iterations", "kernel rows",
                      "time (s)", "test accuracy"});
  for (const char* name : {"ijcnn", "adult", "usps"}) {
    const data::NamedDataset nd = bench::loadDataset(name, opts);
    const struct {
      const char* label;
      solver::Selection selection;
      bool shrinking;
    } variants[] = {
        {"first-order", solver::Selection::FirstOrder, false},
        {"first-order + shrink", solver::Selection::FirstOrder, true},
        {"second-order", solver::Selection::SecondOrder, false},
        {"second-order + shrink", solver::Selection::SecondOrder, true},
    };
    for (const auto& variant : variants) {
      solver::SolverOptions sopts;
      sopts.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
      sopts.C = nd.suggestedC;
      sopts.selection = variant.selection;
      sopts.shrinking = variant.shrinking;
      sopts.shrinkInterval = 200;
      const solver::SolverResult res =
          solver::SmoSolver(sopts).solve(nd.train);
      table.addRow(
          {name, variant.label,
           TablePrinter::fmtCount(static_cast<long long>(res.iterations)),
           TablePrinter::fmtCount(
               static_cast<long long>(res.kernelRowsComputed)),
           TablePrinter::fmt(res.seconds, 3),
           TablePrinter::fmtPercent(res.model.accuracy(nd.test))});
    }
  }
  table.print();
  bench::note(
      "all variants converge to the same quality; the interesting columns "
      "are iterations (selection order) and kernel rows (shrinking trims "
      "the gradient-update width).");
  return 0;
}
