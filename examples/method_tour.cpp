// A tour of all eight training methods on one dataset — the paper's Fig. 1
// as running code. For each refinement step the tour prints what changed
// algorithmically and what it bought: time, accuracy, iterations and
// communication, on the same data and the same simulated 8-rank machine.

#include <cstdio>

#include "casvm/core/train.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/support/table.hpp"

int main() {
  using namespace casvm;

  const data::NamedDataset nd = data::standin("ijcnn");
  std::printf("ijcnn stand-in: %zu train samples, %zu features\n\n",
              nd.train.rows(), nd.train.cols());

  const struct {
    core::Method method;
    const char* story;
  } steps[] = {
      {core::Method::DisSmo,
       "baseline: one global SMO, every iteration synchronizes all ranks"},
      {core::Method::Cascade,
       "+DC +SV: reduction tree, only support vectors travel"},
      {core::Method::DcSvm,
       "+KM: K-means parts, but ALL samples travel layer to layer"},
      {core::Method::DcFilter,
       "KM + SV filter: K-means parts, support vectors travel"},
      {core::Method::CpSvm,
       "+RL: drop the lower layers; P independent SVMs, routed prediction"},
      {core::Method::BkmCa,
       "+LB: balanced K-means + class-ratio quotas"},
      {core::Method::FcfsCa,
       "+LB: first-come-first-served quotas (no K-means iterations)"},
      {core::Method::RaCa,
       "+RC: random even parts, data born distributed -> zero communication"},
  };

  TablePrinter table({"method", "what changed", "time (s)", "accuracy",
                      "iterations", "comm"});
  for (const auto& step : steps) {
    core::TrainConfig cfg;
    cfg.method = step.method;
    cfg.processes = 8;
    cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
    cfg.solver.C = nd.suggestedC;
    const core::TrainResult res = core::train(nd.train, cfg);
    table.addRow({core::methodName(step.method), step.story,
                  TablePrinter::fmt(res.initSeconds + res.trainSeconds, 3),
                  TablePrinter::fmtPercent(res.model.accuracy(nd.test)),
                  TablePrinter::fmtCount(res.totalIterations),
                  TablePrinter::fmtBytes(static_cast<double>(
                      res.runStats.traffic.totalBytes()))});
  }
  table.print();
  std::printf(
      "\nThe paper's Fig. 1 in one table: each row is one refinement step "
      "from Dis-SMO to CA-SVM.\n");
  return 0;
}
