// Face detection scenario (the paper's `face` dataset): heavily imbalanced
// classes (~5% positives). This is the workload where the paper shows that
// *data* balance is not *load* balance — a rank that happens to receive
// more positives grows more support vectors and becomes the straggler —
// and where the ratio-balanced partitioners earn their keep.
//
// The example trains CP-SVM (plain K-means parts) and FCFS-CA
// (ratio-balanced parts) and prints the per-rank workloads side by side.

#include <algorithm>
#include <cstdio>

#include "casvm/core/train.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/support/table.hpp"

int main() {
  using namespace casvm;

  const data::NamedDataset nd = data::standin("face");
  std::printf("face stand-in: %zu samples, %.1f%% positive\n",
              nd.train.rows(),
              100.0 * nd.train.positives() / nd.train.rows());

  auto run = [&](core::Method method) {
    core::TrainConfig cfg;
    cfg.method = method;
    cfg.processes = 8;
    cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
    cfg.solver.C = nd.suggestedC;
    return core::train(nd.train, cfg);
  };

  const core::TrainResult cp = run(core::Method::CpSvm);
  const core::TrainResult fcfs = run(core::Method::FcfsCa);

  TablePrinter table({"rank", "CP-SVM samples", "CP-SVM iters",
                      "FCFS-CA samples", "FCFS-CA iters"});
  for (int r = 0; r < 8; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    table.addRow({std::to_string(r),
                  TablePrinter::fmtCount(cp.samplesPerRank[ur]),
                  TablePrinter::fmtCount(cp.iterationsPerRank[ur]),
                  TablePrinter::fmtCount(fcfs.samplesPerRank[ur]),
                  TablePrinter::fmtCount(fcfs.iterationsPerRank[ur])});
  }
  table.print();

  auto spread = [](const std::vector<long long>& v) {
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return double(*hi) / std::max(1.0, double(*lo));
  };
  std::printf(
      "\nslowest/fastest iteration spread: CP-SVM %.1fx, FCFS-CA %.1fx\n",
      spread(cp.iterationsPerRank), spread(fcfs.iterationsPerRank));
  std::printf("critical-path time: CP-SVM %.3fs, FCFS-CA %.3fs\n",
              cp.trainSeconds, fcfs.trainSeconds);
  std::printf("accuracy: CP-SVM %.1f%%, FCFS-CA %.1f%%\n",
              100.0 * cp.model.accuracy(nd.test),
              100.0 * fcfs.model.accuracy(nd.test));
  return 0;
}
