// Quickstart: train a communication-avoiding SVM (CA-SVM) on synthetic
// data, evaluate it, inspect the run's statistics, and round-trip the
// model through a file.
//
//   $ ./examples/quickstart
//
// The five steps below are the whole public workflow: make (or load) a
// Dataset, fill a TrainConfig, call core::train, use the DistributedModel,
// and save it.

#include <cstdio>

#include "casvm/core/train.hpp"
#include "casvm/data/registry.hpp"

int main() {
  using namespace casvm;

  // 1. Data: a built-in synthetic stand-in with train/test split and tuned
  //    kernel defaults. (Use data::readLibsvmFile for real LIBSVM files.)
  const data::NamedDataset nd = data::standin("toy");
  std::printf("dataset: %zu train / %zu test samples, %zu features\n",
              nd.train.rows(), nd.test.rows(), nd.train.cols());

  // 2. Configuration: CA-SVM (the paper's RA-CA) across 8 simulated ranks.
  core::TrainConfig cfg;
  cfg.method = core::Method::RaCa;
  cfg.processes = 8;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  cfg.solver.C = nd.suggestedC;

  // 3. Train. The engine runs one SPMD rank per process; CA-SVM trains P
  //    fully independent sub-SVMs with zero inter-rank communication.
  const core::TrainResult result = core::train(nd.train, cfg);

  // 4. Use the model: accuracy over a test set, or per-sample predictions
  //    routed to the sub-model whose data center is nearest.
  std::printf("test accuracy: %.1f%%\n",
              100.0 * result.model.accuracy(nd.test));
  std::printf("first 5 predictions:");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf(" %+d", result.model.predictFor(nd.test, i));
  }
  std::printf("\n");

  // The run statistics the paper reports:
  std::printf("training time: %.3fs (init %.3fs), iterations: %lld\n",
              result.trainSeconds, result.initSeconds,
              result.totalIterations);
  std::printf("bytes communicated during training: %zu (CA-SVM: always 0)\n",
              result.runStats.traffic.totalBytes());
  std::printf("support vectors: %zu across %zu sub-models\n",
              result.model.totalSupportVectors(), result.model.numModels());

  // 5. Persist and reload.
  const std::string path = "/tmp/casvm_quickstart.model";
  result.model.save(path);
  const core::DistributedModel loaded = core::DistributedModel::load(path);
  std::printf("reloaded model accuracy: %.1f%% (same model)\n",
              100.0 * loaded.accuracy(nd.test));
  return 0;
}
