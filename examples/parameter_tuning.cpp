// Parameter tuning workflow: scale features, grid-search (gamma, C) with
// stratified cross-validation, train the final model with the winning
// parameters, and report full metrics — the complete model-selection
// pipeline a deployment would run, entirely on the communication-avoiding
// method.

#include <cstdio>

#include "casvm/core/metrics.hpp"
#include "casvm/core/model_selection.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/data/scale.hpp"
#include "casvm/support/table.hpp"

int main() {
  using namespace casvm;

  const data::NamedDataset nd = data::standin("adult", 0.5);
  std::printf("adult stand-in: %zu train / %zu test samples\n",
              nd.train.rows(), nd.test.rows());

  // 1. Scale: fit on train, apply to both (never refit on test).
  const data::Scaler scaler =
      data::Scaler::fit(nd.train, data::ScalingKind::Standard);
  const data::Dataset train = scaler.apply(nd.train);
  const data::Dataset test = scaler.apply(nd.test);

  // 2. Grid search with 3-fold stratified CV on the training split.
  core::TrainConfig cfg;
  cfg.method = core::Method::FcfsCa;
  cfg.processes = 8;
  const std::vector<double> gammas{0.001, 0.01, 0.1, 1.0};
  const std::vector<double> Cs{0.5, 1.0, 4.0};
  std::printf("grid search: %zu points x 3-fold CV...\n",
              gammas.size() * Cs.size());
  const core::GridSearchResult grid =
      core::gridSearch(train, cfg, gammas, Cs, 3);

  TablePrinter table({"gamma", "C", "CV accuracy", "stddev"});
  for (const core::GridPoint& p : grid.evaluated) {
    table.addRow({TablePrinter::fmt(p.gamma, 3), TablePrinter::fmt(p.C, 1),
                  TablePrinter::fmtPercent(p.meanAccuracy),
                  TablePrinter::fmt(p.stddev, 3)});
  }
  table.print();
  std::printf("winner: gamma=%.3g C=%.3g (CV %.1f%%)\n", grid.best.gamma,
              grid.best.C, 100.0 * grid.best.meanAccuracy);

  // 3. Train the final model with the winner and evaluate properly.
  cfg.solver.kernel = kernel::KernelParams::gaussian(grid.best.gamma);
  cfg.solver.C = grid.best.C;
  const core::TrainResult final = core::train(train, cfg);
  const core::BinaryMetrics metrics = core::evaluate(final.model, test);
  std::printf("\nfinal model on held-out test split:\n%s",
              metrics.report().c_str());
  return 0;
}
