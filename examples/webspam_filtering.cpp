// Web-spam filtering scenario (the paper's `webspam` dataset): sparse,
// high-dimensional text-ish features. Demonstrates the sparse (CSR) data
// path end to end — LIBSVM export/import round trip included — and the
// paper's method choice: on this workload CA-SVM gets its largest
// speedups over Dis-SMO (paper: 269s -> 17.3s, 15.6x) with ~2% accuracy
// cost.

#include <cstdio>
#include <cstdlib>

#include "casvm/core/train.hpp"
#include "casvm/data/io.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/support/table.hpp"

int main(int argc, char** argv) {
  using namespace casvm;

  // Pass a real LIBSVM file to classify actual data instead.
  data::NamedDataset nd;
  if (argc > 1) {
    nd.name = argv[1];
    nd.train = data::readLibsvmFile(argv[1]);
    nd.test = nd.train;
    nd.suggestedGamma = 1.0 / static_cast<double>(nd.train.cols());
    nd.suggestedC = 1.0;
  } else {
    nd = data::standin("webspam");
  }
  std::printf("webspam stand-in: %zu samples, %zu features, %.1f%% dense\n",
              nd.train.rows(), nd.train.cols(),
              100.0 * nd.train.nonzeros() /
                  (nd.train.rows() * nd.train.cols()));

  // Sparse datasets survive the LIBSVM round trip bit-for-bit.
  const std::string path = "/tmp/casvm_webspam.libsvm";
  data::writeLibsvmFile(nd.train, path);
  const data::Dataset reread = data::readLibsvmFile(path, nd.train.cols());
  std::printf("libsvm round trip: %zu rows re-read, storage %s\n",
              reread.rows(),
              reread.storage() == data::Storage::Sparse ? "sparse" : "dense");

  TablePrinter table({"method", "accuracy", "time (s)", "comm bytes"});
  for (core::Method method :
       {core::Method::DisSmo, core::Method::CpSvm, core::Method::RaCa}) {
    core::TrainConfig cfg;
    cfg.method = method;
    cfg.processes = 8;
    cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
    cfg.solver.C = nd.suggestedC;
    const core::TrainResult res = core::train(nd.train, cfg);
    table.addRow({core::methodName(method),
                  TablePrinter::fmtPercent(res.model.accuracy(nd.test)),
                  TablePrinter::fmt(res.initSeconds + res.trainSeconds, 3),
                  TablePrinter::fmtBytes(static_cast<double>(
                      res.runStats.traffic.totalBytes()))});
  }
  table.print();
  std::remove(path.c_str());
  return 0;
}
