// Digit recognition scenario (the USPS motivation, gone multi-class):
// a 10-class problem decomposed into 45 one-vs-one binary SVMs, each
// trained with the communication-avoiding pipeline. Demonstrates the
// multiclass API plus model persistence, and shows the paper's point that
// "a multi-class SVM can be easily processed in parallel once its
// constituent binary-class SVMs are available" — with CA-SVM the whole
// ensemble trains without any inter-node communication.

#include <cstdio>

#include "casvm/core/multiclass.hpp"
#include "casvm/data/synth.hpp"

int main() {
  using namespace casvm;

  // A USPS-like 10-class mixture (digits 0-9), 20 components total so each
  // digit owns two handwriting "styles".
  data::MixtureSpec spec;
  spec.samples = 3600;  // 3000 train + 600 held out
  spec.features = 64;  // 8x8 digit-raster scale
  spec.clusters = 20;
  spec.centerSpread = 6.0 / 8.0;
  spec.clusterSpread = 1.0 / 8.0;
  spec.minCenterSeparation = 4.0;
  spec.labelNoise = 0.01;
  spec.seed = 7;
  const data::MulticlassData joint = data::generateMulticlassMixture(spec, 10);
  auto take = [&](std::size_t begin, std::size_t count) {
    std::vector<std::size_t> idx(count);
    for (std::size_t i = 0; i < count; ++i) idx[i] = begin + i;
    data::MulticlassData part;
    part.features = joint.features.subset(idx);
    part.labels.assign(joint.labels.begin() + static_cast<long>(begin),
                       joint.labels.begin() + static_cast<long>(begin + count));
    return part;
  };
  const data::MulticlassData train = take(0, 3000);
  const data::MulticlassData test = take(3000, 600);

  core::TrainConfig cfg;
  cfg.method = core::Method::RaCa;  // zero-communication training
  cfg.processes = 4;
  cfg.solver.kernel = kernel::KernelParams::gaussian(0.5);
  cfg.solver.C = 1.0;

  std::printf("training 10-class digit model: %zu samples, %zu features\n",
              train.features.rows(), train.features.cols());
  const core::MulticlassResult res =
      core::trainMulticlass(train.features, train.labels, cfg);
  std::printf("trained %zu pairwise models, %lld total SMO iterations\n",
              res.pairsTrained, res.totalIterations);
  std::printf("test accuracy: %.1f%%\n",
              100.0 * res.model.accuracy(test.features, test.labels));

  // Per-digit recall.
  std::printf("per-digit recall:");
  for (int digit = 0; digit < 10; ++digit) {
    std::size_t total = 0, hit = 0;
    for (std::size_t i = 0; i < test.labels.size(); ++i) {
      if (test.labels[i] != digit) continue;
      ++total;
      hit += (res.model.predictFor(test.features, i) == digit);
    }
    std::printf(" %d:%.0f%%", digit,
                total ? 100.0 * hit / total : 0.0);
  }
  std::printf("\n");

  const std::string path = "/tmp/casvm_digits.model";
  res.model.save(path);
  const core::MulticlassModel loaded = core::MulticlassModel::load(path);
  std::printf("reloaded ensemble: %zu pairs, accuracy %.1f%%\n",
              loaded.numPairs(),
              100.0 * loaded.accuracy(test.features, test.labels));
  return 0;
}
